package query

import (
	"fmt"

	"github.com/stripdb/strip/internal/obs"
	"github.com/stripdb/strip/internal/storage"
	"github.com/stripdb/strip/internal/txn"
)

// Shared query execution (SharedDB-style): a batch of compatible read-only
// SELECTs over the same table executes as ONE snapshot scan pass at a
// single LSN, demultiplexing each visible record to every query's residual
// filters and output builder. With thousands of concurrent readers over the
// same hot derived table, per-query execution repeats the identical
// version-chain walk once per reader; the shared pass does it once per
// gather group. MVCC makes the sharing free of anomalies: every query in
// the group observes exactly the snapshot at the pinned LSN, which is also
// what each would have seen running alone at that instant.
//
// Compatibility is deliberately narrow — single-table FROM, any WHERE /
// projection / aggregation / ORDER BY — because that is the shape of the
// hot serving queries (probes and rollups over derived tables). Joins and
// multi-statement shapes fall back to per-query execution at the caller.

// SharedResult is one query's outcome from a RunShared batch. Exactly one
// of Out/Err is meaningful; a per-query error (bad expression, unknown
// column) does not poison the rest of the batch.
type SharedResult struct {
	Out *storage.TempTable
	Err error
}

// SharedEligible reports whether q has the single-table shape the shared
// path accepts, and over which table.
func SharedEligible(q *Select) (table string, ok bool) {
	if q == nil || len(q.From) != 1 {
		return "", false
	}
	return q.From[0], true
}

// RunShared executes every query in one ScanSnapshot pass over table at a
// single snapshot LSN, returning per-query results plus the LSN all of
// them read at. tx must be a snapshot-reading transaction (BeginReadOnly);
// the whole batch pins tx's begin snapshot, so results are mutually
// consistent: any row one query sees at the LSN, every query sees.
//
// A batch-level error (unknown table, transaction not snapshot-capable)
// fails the whole call; per-query preparation or evaluation errors land in
// that query's SharedResult.Err only.
func RunShared(tx *txn.Txn, table string, queries []*Select) ([]SharedResult, uint64, error) {
	if len(queries) == 0 {
		return nil, 0, fmt.Errorf("query: empty shared batch")
	}
	mgr := tx.Manager()
	start := mgr.Clock.Now()
	tbl, _, err := TxnResolver{}.Resolve(tx, table)
	if err != nil {
		return nil, 0, err
	}
	snap, me, ok := tx.SnapshotRead()
	if !ok {
		return nil, 0, fmt.Errorf("query: shared execution needs a snapshot-reading transaction")
	}

	results := make([]SharedResult, len(queries))
	execs := make([]*exec, len(queries))   // nil once dead (errored)
	emitting := make([]bool, len(queries)) // false: provably empty, skip rows
	for i, q := range queries {
		if got, okq := SharedEligible(q); !okq || got != table {
			results[i].Err = fmt.Errorf("query: shared batch query %d is not a single-table select over %q", i, table)
			continue
		}
		ex, empty, perr := prepShared(tx, tbl, table, q)
		if perr != nil {
			results[i].Err = perr
			continue
		}
		execs[i] = ex
		emitting[i] = !empty
	}

	// One pass: materialize the visible set under the table latch (never
	// recurse or evaluate under it — same discipline as the per-query scan
	// path), then feed every record to every live query.
	mgr.Obs.Counter(obs.MMvccSnapshotScans).Inc()
	var recs []*storage.Record
	tbl.ScanSnapshot(snap, me, func(r *storage.Record) bool {
		recs = append(recs, r)
		return true
	})
	mgr.Obs.Counter(obs.MSharedScanRows).Add(int64(len(recs)))

	model := tx.Model()
	cur := make([]cursor, 1)
	for _, r := range recs {
		// The scan itself is charged once per row for the whole group —
		// that amortization is the point of sharing the pass.
		tx.Charge(model.ScanRow)
		for i, ex := range execs {
			if ex == nil || !emitting[i] {
				continue
			}
			if ex.prof != nil {
				ex.prof.RowsScanned++
			}
			cur[0] = cursor{src: ex.srcs[0], rec: r}
			if verr := ex.visitShared(cur); verr != nil {
				results[i].Err = verr
				ex.out.Retire()
				execs[i] = nil
			}
		}
	}

	for i, ex := range execs {
		if ex == nil {
			continue
		}
		out, ferr := ex.finish()
		if ferr != nil {
			results[i].Err = ferr
			continue
		}
		if len(ex.q.OrderBy) > 0 {
			if serr := sortResult(out, ex.q.OrderBy, ex.q.Desc); serr != nil {
				out.Retire()
				results[i].Err = serr
				continue
			}
		}
		results[i].Out = out
		mgr.Obs.Counter(obs.MQuerySelects).Inc()
	}
	mgr.Obs.Counter(obs.MSharedGroups).Inc()
	mgr.Obs.Counter(obs.MSharedQueries).Add(int64(len(queries)))
	mgr.Obs.Histogram(obs.MSharedGroupSize).Record(int64(len(queries)))
	mgr.Obs.Histogram(obs.MQuerySelectMicros).Record(mgr.Clock.Now() - start)
	return results, snap, nil
}

// visitShared applies one record to the query's residual filters and, on a
// full match, its output builder.
func (ex *exec) visitShared(cur []cursor) error {
	for _, p := range ex.residuals[0] {
		ok, err := p.eval(cur)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
	return ex.emit(cur)
}

// prepShared builds a query's executor against an already-resolved table:
// the per-query half of RunShared (clone, resolve, classify predicates,
// prepare output). empty reports a constant predicate proved the result
// empty, so the scan loop can skip the query while finish still returns
// its (empty) output table. Index probes are deliberately not planned —
// the batch runs as one scan, and a probe would fragment it back into
// per-query index walks.
func prepShared(tx *txn.Txn, tbl *storage.Table, table string, q *Select) (ex *exec, empty bool, err error) {
	model := tx.Model()
	tx.Charge(model.StmtSetup)
	q = q.clone()
	ex = &exec{q: q, tx: tx, prof: tx.Profile()}
	ex.srcs = []*source{{name: table, schema: tbl.Schema(), tbl: tbl}}
	tx.Charge(model.OpenCursor)

	if q.Star {
		if len(q.Items) > 0 {
			return nil, false, fmt.Errorf("query: * cannot mix with explicit items")
		}
		s := ex.srcs[0]
		for i := 0; i < s.schema.NumCols(); i++ {
			ex.q.Items = append(ex.q.Items, Item(QCol(s.name, s.schema.Col(i).Name), ""))
		}
	}
	for i := range q.Items {
		if q.Items[i].Expr == nil {
			return nil, false, fmt.Errorf("query: select item %d has no expression", i)
		}
		if err := q.Items[i].Expr.resolve(ex.srcs); err != nil {
			return nil, false, err
		}
	}
	for i := range q.Where {
		if err := q.Where[i].resolve(ex.srcs); err != nil {
			return nil, false, err
		}
	}
	for _, g := range q.GroupBy {
		if err := g.resolve(ex.srcs); err != nil {
			return nil, false, err
		}
	}
	if err := ex.validateAggregates(); err != nil {
		return nil, false, err
	}

	ex.probes = make([]*probe, 1)
	ex.residuals = make([][]Pred, 1)
	for _, p := range q.Where {
		if p.maxSource() < 0 {
			ex.constPreds = append(ex.constPreds, p)
			continue
		}
		ex.residuals[0] = append(ex.residuals[0], p)
	}
	if err := ex.prepareOutput(); err != nil {
		return nil, false, err
	}
	for _, p := range ex.constPreds {
		ok, cerr := p.eval(nil)
		if cerr != nil {
			ex.out.Retire()
			return nil, false, cerr
		}
		if !ok {
			return ex, true, nil
		}
	}
	return ex, false, nil
}
