package query

import (
	"fmt"
	"sync"
	"testing"

	"github.com/stripdb/strip/internal/catalog"
	"github.com/stripdb/strip/internal/clock"
	"github.com/stripdb/strip/internal/cost"
	"github.com/stripdb/strip/internal/lock"
	"github.com/stripdb/strip/internal/obs"
	"github.com/stripdb/strip/internal/storage"
	"github.com/stripdb/strip/internal/txn"
	"github.com/stripdb/strip/internal/types"
)

// TestRunSharedBasic: a heterogeneous batch — full scan, filtered scan,
// aggregate, star+order-by — run as ONE snapshot pass must return exactly
// what each query returns running alone, while incrementing the snapshot
// scan counter once for the whole group and touching the lock manager not
// at all.
func TestRunSharedBasic(t *testing.T) {
	mgr, lm := lockEnv(t)

	queries := []*Select{
		{ // full scan
			Items: []SelectItem{Item(Col("symbol"), ""), Item(Col("price"), "")},
			From:  []string{"stocks"},
		},
		{ // residual filter
			Items: []SelectItem{Item(Col("symbol"), "")},
			From:  []string{"stocks"},
			Where: []Pred{Cmp(Col("price"), GT, Const(types.Float(35)))},
		},
		{ // aggregate
			Items: []SelectItem{AggItem(AggSum, Col("price"), "total")},
			From:  []string{"stocks"},
		},
		{ // star + order by
			Star:    true,
			From:    []string{"stocks"},
			OrderBy: []string{"price"},
			Desc:    true,
		},
	}

	// Reference results, per-query, at the same (quiescent) database.
	var want [][][]types.Value
	for _, q := range queries {
		ro := mgr.BeginReadOnly()
		res, err := q.Run(ro, TxnResolver{})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, rows(res))
		res.Retire()
		if err := ro.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	scans := mgr.Obs.Counter(obs.MMvccSnapshotScans).Load()
	acquires := lm.Stats().Acquires
	ro := mgr.BeginReadOnly()
	results, snap, err := RunShared(ro, "stocks", queries)
	if err != nil {
		t.Fatal(err)
	}
	if snap == 0 {
		t.Fatal("shared batch reported LSN 0")
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
		got := rows(r.Out)
		if fmt.Sprint(got) != fmt.Sprint(want[i]) {
			t.Errorf("query %d:\n got %v\nwant %v", i, got, want[i])
		}
		r.Out.Retire()
	}
	if err := ro.Commit(); err != nil {
		t.Fatal(err)
	}
	if d := mgr.Obs.Counter(obs.MMvccSnapshotScans).Load() - scans; d != 1 {
		t.Errorf("shared batch ran %d snapshot scans, want exactly 1", d)
	}
	if d := lm.Stats().Acquires - acquires; d != 0 {
		t.Errorf("shared batch acquired %d locks, want 0", d)
	}
	if mgr.Obs.Counter(obs.MSharedGroups).Load() == 0 ||
		mgr.Obs.Counter(obs.MSharedQueries).Load() < int64(len(queries)) {
		t.Error("shared.* counters never moved")
	}
}

// sharedWriterEnv builds an accounts table under a real clock for
// concurrency tests: 8 accounts, 100 each, constant total 800.
func sharedWriterEnv(t testing.TB) *txn.Manager {
	t.Helper()
	cat := catalog.New()
	store := storage.NewStore()
	schema := catalog.MustSchema("accounts",
		catalog.Column{Name: "id", Kind: types.KindInt},
		catalog.Column{Name: "balance", Kind: types.KindFloat})
	if err := cat.Define(schema); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Create(schema); err != nil {
		t.Fatal(err)
	}
	mgr := txn.NewManager(cat, store, lock.New(), clock.NewReal(), cost.NewMeter(), cost.Default())
	tx := mgr.Begin()
	for i := 0; i < 8; i++ {
		if _, err := tx.Insert("accounts", []types.Value{types.Int(int64(i)), types.Float(100)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return mgr
}

// TestRunSharedSingleLSNUnderWriters is the shared path's correctness
// argument under fire: while transfer transactions continuously move money
// between accounts (preserving the total), every query of every shared
// batch must observe the same single LSN — so an aggregate over the whole
// table always sees the invariant total, and two copies of the same
// aggregate inside one batch always agree.
func TestRunSharedSingleLSNUnderWriters(t *testing.T) {
	mgr := sharedWriterEnv(t)
	const total = 800.0

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			from, to := seed%8, (seed+3)%8
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tx := mgr.Begin()
				move := func(id int64, delta float64) error {
					stmt := &UpdateStmt{
						Table: "accounts",
						Set:   []SetClause{{Col: "balance", Expr: Const(types.Float(delta)), AddTo: true}},
						Where: []Pred{Eq(Col("id"), Const(types.Int(id)))},
					}
					_, err := stmt.Run(tx)
					return err
				}
				if move(from, -1) != nil || move(to, 1) != nil {
					tx.Abort()
					continue
				}
				if err := tx.Commit(); err != nil {
					tx.Abort()
				}
				from, to = (from+1)%8, (to+5)%8
			}
		}(int64(w))
	}

	sumQ := func() *Select {
		return &Select{
			Items: []SelectItem{AggItem(AggSum, Col("balance"), "total")},
			From:  []string{"accounts"},
		}
	}
	for round := 0; round < 200; round++ {
		ro := mgr.BeginReadOnly()
		// Two copies of the same aggregate plus a full scan: all three must
		// describe the same instant.
		batch := []*Select{sumQ(), sumQ(), {Star: true, From: []string{"accounts"}}}
		results, snap, err := RunShared(ro, "accounts", batch)
		if err != nil {
			t.Fatal(err)
		}
		if snap == 0 {
			t.Fatal("snapshot LSN 0")
		}
		var sums [2]float64
		for i := 0; i < 2; i++ {
			if results[i].Err != nil {
				t.Fatalf("round %d query %d: %v", round, i, results[i].Err)
			}
			if results[i].Out.Len() != 1 {
				t.Fatalf("round %d: aggregate returned %d rows", round, results[i].Out.Len())
			}
			sums[i] = results[i].Out.Value(0, 0).Float()
		}
		if sums[0] != total || sums[1] != total {
			t.Fatalf("round %d: sums %v != invariant %v — batch not at a single LSN", round, sums, total)
		}
		if results[2].Err != nil {
			t.Fatal(results[2].Err)
		}
		var scanSum float64
		for i := 0; i < results[2].Out.Len(); i++ {
			scanSum += results[2].Out.Value(i, 1).Float()
		}
		if scanSum != total {
			t.Fatalf("round %d: full-scan total %v != aggregate total %v", round, scanSum, total)
		}
		for _, r := range results {
			r.Out.Retire()
		}
		if err := ro.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestRunSharedPerQueryError: a bad query (unknown column, join shape)
// fails alone; the rest of the batch still runs.
func TestRunSharedPerQueryError(t *testing.T) {
	mgr, _ := lockEnv(t)
	ro := mgr.BeginReadOnly()
	defer ro.Commit()

	queries := []*Select{
		{Items: []SelectItem{Item(Col("symbol"), "")}, From: []string{"stocks"}},
		{Items: []SelectItem{Item(Col("nope"), "")}, From: []string{"stocks"}},
		{Star: true, From: []string{"stocks", "stocks"}}, // join: not shared-eligible
	}
	results, _, err := RunShared(ro, "stocks", queries)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatalf("good query poisoned: %v", results[0].Err)
	}
	if results[0].Out.Len() != 3 {
		t.Fatalf("good query rows = %d", results[0].Out.Len())
	}
	results[0].Out.Retire()
	if results[1].Err == nil {
		t.Error("unknown column should fail its query")
	}
	if results[2].Err == nil {
		t.Error("join shape should fail its query")
	}
}

// TestRunSharedConstFalse: a provably-false constant predicate yields an
// empty — but present — result without scanning rows for that query.
func TestRunSharedConstFalse(t *testing.T) {
	mgr, _ := lockEnv(t)
	ro := mgr.BeginReadOnly()
	defer ro.Commit()

	queries := []*Select{
		{
			Items: []SelectItem{Item(Col("symbol"), "")},
			From:  []string{"stocks"},
			Where: []Pred{Cmp(Const(types.Int(1)), EQ, Const(types.Int(2)))},
		},
		{Items: []SelectItem{Item(Col("symbol"), "")}, From: []string{"stocks"}},
	}
	results, _, err := RunShared(ro, "stocks", queries)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	if results[0].Out == nil || results[0].Out.Len() != 0 {
		t.Fatalf("const-false query: want empty result, got %v", results[0].Out)
	}
	if results[1].Out.Len() != 3 {
		t.Fatalf("sibling query rows = %d", results[1].Out.Len())
	}
	results[0].Out.Retire()
	results[1].Out.Retire()
}

// TestRunSharedRequiresSnapshot: an ordinary (locking) transaction cannot
// host a shared batch — the whole call fails, no partial results.
func TestRunSharedRequiresSnapshot(t *testing.T) {
	mgr, _ := lockEnv(t)
	tx := mgr.Begin()
	defer tx.Commit()
	_, _, err := RunShared(tx, "stocks", []*Select{{Star: true, From: []string{"stocks"}}})
	if err == nil {
		t.Fatal("shared batch on a locking txn should fail")
	}
}
