package query

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/stripdb/strip/internal/catalog"
	"github.com/stripdb/strip/internal/clock"
	"github.com/stripdb/strip/internal/cost"
	"github.com/stripdb/strip/internal/index"
	"github.com/stripdb/strip/internal/lock"
	"github.com/stripdb/strip/internal/storage"
	"github.com/stripdb/strip/internal/txn"
	"github.com/stripdb/strip/internal/types"
)

// env builds the paper's Figure 4 database: stocks S1/S2/S3 and composites
// C1 (S1,S3 @ 0.5) and C2 (S1 @ 0.3, S2 @ 0.7).
func env(t testing.TB) *txn.Manager {
	t.Helper()
	cat := catalog.New()
	store := storage.NewStore()
	mk := func(s *catalog.Schema) *storage.Table {
		if err := cat.Define(s); err != nil {
			t.Fatal(err)
		}
		tbl, err := store.Create(s)
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	stocks := mk(catalog.MustSchema("stocks",
		catalog.Column{Name: "symbol", Kind: types.KindString},
		catalog.Column{Name: "price", Kind: types.KindFloat}))
	comps := mk(catalog.MustSchema("comps_list",
		catalog.Column{Name: "comp", Kind: types.KindString},
		catalog.Column{Name: "symbol", Kind: types.KindString},
		catalog.Column{Name: "weight", Kind: types.KindFloat}))
	mk(catalog.MustSchema("comp_prices",
		catalog.Column{Name: "comp", Kind: types.KindString},
		catalog.Column{Name: "price", Kind: types.KindFloat}))
	if err := stocks.CreateIndex("symbol", index.Hash); err != nil {
		t.Fatal(err)
	}
	if err := comps.CreateIndex("symbol", index.Hash); err != nil {
		t.Fatal(err)
	}

	mgr := txn.NewManager(cat, store, lock.New(), clock.NewVirtual(), cost.NewMeter(), cost.Default())
	tx := mgr.Begin()
	for _, r := range [][]types.Value{
		{types.Str("S1"), types.Float(30)},
		{types.Str("S2"), types.Float(40)},
		{types.Str("S3"), types.Float(50)},
	} {
		if _, err := tx.Insert("stocks", r); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range [][]types.Value{
		{types.Str("C1"), types.Str("S1"), types.Float(0.5)},
		{types.Str("C1"), types.Str("S3"), types.Float(0.5)},
		{types.Str("C2"), types.Str("S1"), types.Float(0.3)},
		{types.Str("C2"), types.Str("S2"), types.Float(0.7)},
	} {
		if _, err := tx.Insert("comps_list", r); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range [][]types.Value{
		{types.Str("C1"), types.Float(40)},
		{types.Str("C2"), types.Float(37)},
	} {
		if _, err := tx.Insert("comp_prices", r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return mgr
}

func rows(tt *storage.TempTable) [][]types.Value {
	out := make([][]types.Value, tt.Len())
	for i := range out {
		out[i] = tt.Row(i)
	}
	return out
}

func TestSelectScanAll(t *testing.T) {
	mgr := env(t)
	tx := mgr.Begin()
	defer tx.Commit()
	q := &Select{
		Items: []SelectItem{Item(Col("symbol"), ""), Item(Col("price"), "")},
		From:  []string{"stocks"},
	}
	res, err := q.Run(tx, TxnResolver{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("got %d rows", res.Len())
	}
	if res.Schema().Name() != "result" {
		t.Errorf("default bind name = %s", res.Schema().Name())
	}
	if got := res.Value(0, 0).Str(); got != "S1" {
		t.Errorf("first symbol = %s", got)
	}
	// Pointer layout: one pointer per row, no materialized columns.
	if res.NumPtrs() != 1 {
		t.Errorf("NumPtrs = %d, want 1", res.NumPtrs())
	}
	res.Retire()
}

func TestSelectWhereFilter(t *testing.T) {
	mgr := env(t)
	tx := mgr.Begin()
	defer tx.Commit()
	q := &Select{
		Items: []SelectItem{Item(Col("symbol"), "")},
		From:  []string{"stocks"},
		Where: []Pred{Cmp(Col("price"), GT, Const(types.Float(35)))},
	}
	res, err := q.Run(tx, TxnResolver{})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Retire()
	if res.Len() != 2 {
		t.Fatalf("got %d rows, want 2", res.Len())
	}
}

// The paper's Figure 3 condition query shape: join comps_list against
// changed stocks. Here we join comps_list with stocks on symbol.
func TestSelectIndexJoin(t *testing.T) {
	mgr := env(t)
	tx := mgr.Begin()
	defer tx.Commit()
	q := &Select{
		Items: []SelectItem{
			Item(QCol("comps_list", "comp"), ""),
			Item(QCol("comps_list", "weight"), ""),
			Item(QCol("stocks", "price"), ""),
		},
		From:  []string{"stocks", "comps_list"},
		Where: []Pred{Eq(QCol("comps_list", "symbol"), QCol("stocks", "symbol"))},
		Bind:  "matches",
	}
	res, err := q.Run(tx, TxnResolver{})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Retire()
	if res.Len() != 4 {
		t.Fatalf("join produced %d rows, want 4", res.Len())
	}
	if res.Schema().Name() != "matches" {
		t.Errorf("bind name = %s", res.Schema().Name())
	}
	// Pointer layout: two pointer slots (comps_list rec, stocks rec).
	if res.NumPtrs() != 2 {
		t.Errorf("NumPtrs = %d, want 2", res.NumPtrs())
	}
	// S1 participates in both composites.
	count := map[string]int{}
	for _, r := range rows(res) {
		count[r[0].Str()]++
	}
	if count["C1"] != 2 || count["C2"] != 2 {
		t.Errorf("composite counts = %v", count)
	}
}

func TestSelectComputedColumn(t *testing.T) {
	mgr := env(t)
	tx := mgr.Begin()
	defer tx.Commit()
	q := &Select{
		Items: []SelectItem{
			Item(Col("symbol"), ""),
			Item(Arith(Col("price"), '*', Const(types.Float(2))), "double_price"),
		},
		From: []string{"stocks"},
	}
	res, err := q.Run(tx, TxnResolver{})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Retire()
	if got := res.Value(0, 1).Float(); got != 60 {
		t.Errorf("computed = %g, want 60", got)
	}
	// Mixed layout: symbol by pointer, computed column materialized.
	if res.NumPtrs() != 1 {
		t.Errorf("NumPtrs = %d", res.NumPtrs())
	}
}

func TestSelectMissingAlias(t *testing.T) {
	mgr := env(t)
	tx := mgr.Begin()
	defer tx.Commit()
	q := &Select{
		Items: []SelectItem{Item(Arith(Col("price"), '+', Const(types.Float(1))), "")},
		From:  []string{"stocks"},
	}
	if _, err := q.Run(tx, TxnResolver{}); err == nil {
		t.Error("computed column without alias accepted")
	}
}

func TestSelectGroupBySum(t *testing.T) {
	mgr := env(t)
	tx := mgr.Begin()
	defer tx.Commit()
	// The comp_prices view definition (paper §3):
	// select comp, sum(price*weight) from stocks, comps_list
	// where stocks.symbol = comps_list.symbol group by comp.
	comp := QCol("comps_list", "comp")
	q := &Select{
		Items: []SelectItem{
			Item(comp, ""),
			AggItem(AggSum, Arith(QCol("stocks", "price"), '*', QCol("comps_list", "weight")), "price"),
		},
		From:    []string{"stocks", "comps_list"},
		Where:   []Pred{Eq(QCol("stocks", "symbol"), QCol("comps_list", "symbol"))},
		GroupBy: []*ColRef{comp},
	}
	res, err := q.Run(tx, TxnResolver{})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Retire()
	if res.Len() != 2 {
		t.Fatalf("groups = %d, want 2", res.Len())
	}
	got := map[string]float64{}
	for _, r := range rows(res) {
		got[r[0].Str()] = r[1].Float()
	}
	// C1 = 0.5*30 + 0.5*50 = 40; C2 = 0.3*30 + 0.7*40 = 37 (Figure 4).
	if got["C1"] != 40 || got["C2"] != 37 {
		t.Errorf("composite prices = %v, want C1=40 C2=37", got)
	}
}

func TestSelectAggregates(t *testing.T) {
	mgr := env(t)
	tx := mgr.Begin()
	defer tx.Commit()
	q := &Select{
		Items: []SelectItem{
			AggItem(AggCount, Col("price"), "n"),
			AggItem(AggAvg, Col("price"), "avg_p"),
			AggItem(AggMin, Col("price"), "min_p"),
			AggItem(AggMax, Col("price"), "max_p"),
			AggItem(AggSum, Col("price"), "sum_p"),
		},
		From: []string{"stocks"},
	}
	res, err := q.Run(tx, TxnResolver{})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Retire()
	if res.Len() != 1 {
		t.Fatalf("global aggregate rows = %d", res.Len())
	}
	r := res.Row(0)
	if r[0].Int() != 3 || r[1].Float() != 40 || r[2].Float() != 30 || r[3].Float() != 50 || r[4].Float() != 120 {
		t.Errorf("aggregates = %v", r)
	}
}

func TestSelectGroupByValidation(t *testing.T) {
	mgr := env(t)
	tx := mgr.Begin()
	defer tx.Commit()
	// Non-aggregated column not in GROUP BY.
	q := &Select{
		Items: []SelectItem{
			Item(Col("symbol"), ""),
			AggItem(AggSum, Col("price"), "s"),
		},
		From:    []string{"stocks"},
		GroupBy: []*ColRef{Col("price")},
	}
	if _, err := q.Run(tx, TxnResolver{}); err == nil {
		t.Error("ungrouped column accepted")
	}
	// GROUP BY without aggregates.
	q2 := &Select{
		Items:   []SelectItem{Item(Col("symbol"), "")},
		From:    []string{"stocks"},
		GroupBy: []*ColRef{Col("symbol")},
	}
	if _, err := q2.Run(tx, TxnResolver{}); err == nil {
		t.Error("GROUP BY without aggregates accepted")
	}
}

func TestSelectErrors(t *testing.T) {
	mgr := env(t)
	tx := mgr.Begin()
	defer tx.Commit()
	cases := []*Select{
		{Items: []SelectItem{Item(Col("symbol"), "")}, From: []string{"missing"}},
		{Items: []SelectItem{Item(Col("nope"), "")}, From: []string{"stocks"}},
		{Items: []SelectItem{Item(Col("symbol"), "")}, From: []string{"stocks", "comps_list"}}, // ambiguous
		{Items: []SelectItem{Item(Col("symbol"), "")}},                                         // empty FROM
		{Items: []SelectItem{{}}, From: []string{"stocks"}},                                    // nil expr
		{Items: []SelectItem{Item(Call("no_such_fn", Col("price")), "x")}, From: []string{"stocks"}},
	}
	for i, q := range cases {
		if _, err := q.Run(tx, TxnResolver{}); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSelectScalarFunc(t *testing.T) {
	RegisterFunc("half", func(args []types.Value) (types.Value, error) {
		return types.Float(args[0].Float() / 2), nil
	})
	mgr := env(t)
	tx := mgr.Begin()
	defer tx.Commit()
	q := &Select{
		Items: []SelectItem{Item(Call("half", Col("price")), "hp")},
		From:  []string{"stocks"},
		Where: []Pred{Eq(Col("symbol"), Const(types.Str("S1")))},
	}
	res, err := q.Run(tx, TxnResolver{})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Retire()
	if res.Len() != 1 || res.Value(0, 0).Float() != 15 {
		t.Errorf("func result = %v", rows(res))
	}
}

func TestSelectConstPredicate(t *testing.T) {
	mgr := env(t)
	tx := mgr.Begin()
	defer tx.Commit()
	q := &Select{
		Items: []SelectItem{Item(Col("symbol"), "")},
		From:  []string{"stocks"},
		Where: []Pred{Cmp(Const(types.Int(1)), EQ, Const(types.Int(2)))},
	}
	res, err := q.Run(tx, TxnResolver{})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Retire()
	if res.Len() != 0 {
		t.Error("false constant predicate returned rows")
	}
}

// Selecting from a temp table whose columns point at standard records must
// pass the pointers through to the result (paper §6.1 pass-through).
func TestSelectOverTempTablePassThrough(t *testing.T) {
	mgr := env(t)
	tx := mgr.Begin()
	defer tx.Commit()

	stocks, _ := mgr.Store.Get("stocks")
	var s1 *storage.Record
	stocks.Scan(func(r *storage.Record) bool {
		if r.Value(0).Str() == "S1" {
			s1 = r
			return false
		}
		return true
	})
	tmpSchema := catalog.MustSchema("new",
		catalog.Column{Name: "symbol", Kind: types.KindString},
		catalog.Column{Name: "price", Kind: types.KindFloat})
	tmp, err := storage.NewTempTable(tmpSchema,
		[]storage.ColSource{storage.FromRecord(0, 0), storage.FromRecord(0, 1)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tmp.AppendRow([]*storage.Record{s1}, nil); err != nil {
		t.Fatal(err)
	}
	defer tmp.Retire()

	res := mixedResolver{tmp: map[string]*storage.TempTable{"new": tmp}}
	q := &Select{
		Items: []SelectItem{
			Item(QCol("comps_list", "comp"), ""),
			Item(QCol("new", "price"), "new_price"),
		},
		From:  []string{"new", "comps_list"},
		Where: []Pred{Eq(QCol("comps_list", "symbol"), QCol("new", "symbol"))},
	}
	out, err := q.Run(tx, res)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Retire()
	if out.Len() != 2 { // S1 is in C1 and C2
		t.Fatalf("rows = %d, want 2", out.Len())
	}
	// Both columns resolve by pointer: comps_list record + the stocks record
	// behind the temp table. Nothing materialized.
	if out.NumPtrs() != 2 {
		t.Errorf("NumPtrs = %d, want 2", out.NumPtrs())
	}
	if got := out.Value(0, 1).Float(); got != 30 {
		t.Errorf("new_price = %g", got)
	}
}

type mixedResolver struct {
	tmp map[string]*storage.TempTable
}

func (m mixedResolver) Resolve(tx *txn.Txn, name string) (*storage.Table, *storage.TempTable, error) {
	if tt, ok := m.tmp[name]; ok {
		return nil, tt, nil
	}
	return TxnResolver{}.Resolve(tx, name)
}

// Property-style test: index join and pure nested-loop join agree on a
// randomized dataset.
func TestIndexJoinMatchesNestedLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cat := catalog.New()
	store := storage.NewStore()
	aSchema := catalog.MustSchema("a",
		catalog.Column{Name: "k", Kind: types.KindInt},
		catalog.Column{Name: "v", Kind: types.KindInt})
	bSchema := catalog.MustSchema("b",
		catalog.Column{Name: "k", Kind: types.KindInt},
		catalog.Column{Name: "w", Kind: types.KindInt})
	if err := cat.Define(aSchema); err != nil {
		t.Fatal(err)
	}
	if err := cat.Define(bSchema); err != nil {
		t.Fatal(err)
	}
	ta, _ := store.Create(aSchema)
	tb, _ := store.Create(bSchema)
	if err := tb.CreateIndex("k", index.RedBlack); err != nil {
		t.Fatal(err)
	}
	mgr := txn.NewManager(cat, store, lock.New(), clock.NewVirtual(), cost.NewMeter(), cost.Default())
	tx := mgr.Begin()
	for i := 0; i < 60; i++ {
		if _, err := ta.Insert([]types.Value{types.Int(int64(rng.Intn(10))), types.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
		if _, err := tb.Insert([]types.Value{types.Int(int64(rng.Intn(10))), types.Int(int64(i * 10))}); err != nil {
			t.Fatal(err)
		}
	}

	run := func(from []string) map[string]int {
		q := &Select{
			Items: []SelectItem{
				Item(QCol("a", "v"), ""),
				Item(QCol("b", "w"), ""),
			},
			From:  from,
			Where: []Pred{Eq(QCol("a", "k"), QCol("b", "k"))},
		}
		res, err := q.Run(tx, TxnResolver{})
		if err != nil {
			t.Fatal(err)
		}
		defer res.Retire()
		out := map[string]int{}
		for _, r := range rows(res) {
			out[fmt.Sprintf("%v|%v", r[0], r[1])]++
		}
		return out
	}
	// a then b: probes b's index. b then a: nested loop (a unindexed).
	ab := run([]string{"a", "b"})
	ba := run([]string{"b", "a"})
	if len(ab) != len(ba) {
		t.Fatalf("join results differ in size: %d vs %d", len(ab), len(ba))
	}
	for k, n := range ab {
		if ba[k] != n {
			t.Fatalf("join results differ at %s: %d vs %d", k, n, ba[k])
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}
