package query

import (
	"testing"

	"github.com/stripdb/strip/internal/types"
)

func TestOrderByAscending(t *testing.T) {
	mgr := env(t)
	tx := mgr.Begin()
	defer tx.Commit()
	q := &Select{
		Items:   []SelectItem{Item(Col("symbol"), ""), Item(Col("price"), "")},
		From:    []string{"stocks"},
		OrderBy: []string{"price"},
	}
	res, err := q.Run(tx, TxnResolver{})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Retire()
	prices := []float64{}
	for i := 0; i < res.Len(); i++ {
		prices = append(prices, res.Value(i, 1).Float())
	}
	if prices[0] != 30 || prices[1] != 40 || prices[2] != 50 {
		t.Errorf("ascending order = %v", prices)
	}
}

func TestOrderByDescending(t *testing.T) {
	mgr := env(t)
	tx := mgr.Begin()
	defer tx.Commit()
	q := &Select{
		Items:   []SelectItem{Item(Col("symbol"), "")},
		From:    []string{"stocks"},
		OrderBy: []string{"symbol"},
		Desc:    true,
	}
	res, err := q.Run(tx, TxnResolver{})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Retire()
	if res.Value(0, 0).Str() != "S3" || res.Value(2, 0).Str() != "S1" {
		t.Errorf("descending order wrong: %v %v", res.Value(0, 0), res.Value(2, 0))
	}
}

func TestOrderByMultiColumn(t *testing.T) {
	mgr := env(t)
	tx := mgr.Begin()
	defer tx.Commit()
	q := &Select{
		Items:   []SelectItem{Item(Col("comp"), ""), Item(Col("symbol"), "")},
		From:    []string{"comps_list"},
		OrderBy: []string{"comp", "symbol"},
	}
	res, err := q.Run(tx, TxnResolver{})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Retire()
	var got []string
	for i := 0; i < res.Len(); i++ {
		got = append(got, res.Value(i, 0).Str()+res.Value(i, 1).Str())
	}
	want := []string{"C1S1", "C1S3", "C2S1", "C2S2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestOrderByAggregateOutput(t *testing.T) {
	mgr := env(t)
	tx := mgr.Begin()
	defer tx.Commit()
	comp := QCol("comps_list", "comp")
	q := &Select{
		Items: []SelectItem{
			Item(comp, ""),
			AggItem(AggSum, QCol("comps_list", "weight"), "w"),
		},
		From:    []string{"comps_list"},
		GroupBy: []*ColRef{comp},
		OrderBy: []string{"w"},
		Desc:    true,
	}
	res, err := q.Run(tx, TxnResolver{})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Retire()
	if res.Len() != 2 || res.Value(0, 1).Float() < res.Value(1, 1).Float() {
		t.Errorf("aggregate not sorted desc: %v", res.Row(0))
	}
}

func TestOrderByUnknownColumn(t *testing.T) {
	mgr := env(t)
	tx := mgr.Begin()
	defer tx.Commit()
	q := &Select{
		Items:   []SelectItem{Item(Col("symbol"), "")},
		From:    []string{"stocks"},
		OrderBy: []string{"nope"},
	}
	if _, err := q.Run(tx, TxnResolver{}); err == nil {
		t.Error("unknown ORDER BY column accepted")
	}
}

func TestOrderByStableOnTies(t *testing.T) {
	mgr := env(t)
	tx := mgr.Begin()
	defer tx.Commit()
	// All comps_list rows for C1 share the weight 0.5: stable sort keeps
	// their original relative order.
	q := &Select{
		Items:   []SelectItem{Item(Col("symbol"), ""), Item(Col("weight"), "")},
		From:    []string{"comps_list"},
		Where:   []Pred{Eq(Col("comp"), Const(types.Str("C1")))},
		OrderBy: []string{"weight"},
	}
	res, err := q.Run(tx, TxnResolver{})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Retire()
	if res.Value(0, 0).Str() != "S1" || res.Value(1, 0).Str() != "S3" {
		t.Errorf("tie order not stable: %v, %v", res.Value(0, 0), res.Value(1, 0))
	}
}
