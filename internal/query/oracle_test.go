package query

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"github.com/stripdb/strip/internal/catalog"
	"github.com/stripdb/strip/internal/clock"
	"github.com/stripdb/strip/internal/cost"
	"github.com/stripdb/strip/internal/index"
	"github.com/stripdb/strip/internal/lock"
	"github.com/stripdb/strip/internal/storage"
	"github.com/stripdb/strip/internal/txn"
	"github.com/stripdb/strip/internal/types"
)

// Randomized equivalence oracle: a few hundred generated SELECTs — joins,
// constant filters, aggregates, ORDER BY, LIMIT, a temp-table source —
// run through the streaming engine under every (planner, read-mode)
// combination and through a naive nested-loop reference evaluator over
// the raw rows. Any divergence is a planner or executor bug.

// oracleCol/oracleTable describe the fixture schema and data as plain
// values, shared between engine loading and the reference evaluator.
type oracleTable struct {
	name    string
	cols    []catalog.Column
	indexes []string
	temp    bool
	rows    [][]types.Value
}

func oracleTables(rng *rand.Rand) []oracleTable {
	stocks := oracleTable{
		name: "stocks",
		cols: []catalog.Column{
			{Name: "symbol", Kind: types.KindString},
			{Name: "sector", Kind: types.KindString},
			{Name: "price", Kind: types.KindFloat},
			{Name: "qty", Kind: types.KindInt},
		},
		indexes: []string{"symbol"},
	}
	for i := 0; i < 30; i++ {
		stocks.rows = append(stocks.rows, []types.Value{
			types.Str(fmt.Sprintf("S%02d", i)),
			types.Str(fmt.Sprintf("sec%d", i%5)),
			types.Float(float64(100 + 10*(i%4))),
			types.Int(int64(i % 7)),
		})
	}
	trades := oracleTable{
		name: "trades",
		cols: []catalog.Column{
			{Name: "trade_id", Kind: types.KindInt},
			{Name: "symbol", Kind: types.KindString},
			{Name: "qty", Kind: types.KindInt},
		},
		indexes: []string{"trade_id", "symbol"},
	}
	for i := 0; i < 90; i++ {
		trades.rows = append(trades.rows, []types.Value{
			types.Int(int64(i)),
			types.Str(fmt.Sprintf("S%02d", rng.Intn(30))),
			types.Int(int64(1 + i%9)),
		})
	}
	sectors := oracleTable{
		name: "sectors",
		cols: []catalog.Column{
			{Name: "sector", Kind: types.KindString},
			{Name: "region", Kind: types.KindString},
		},
	}
	for i := 0; i < 5; i++ {
		sectors.rows = append(sectors.rows, []types.Value{
			types.Str(fmt.Sprintf("sec%d", i)),
			types.Str(fmt.Sprintf("region%d", i%2)),
		})
	}
	boosts := oracleTable{
		name: "boosts",
		temp: true,
		cols: []catalog.Column{
			{Name: "symbol", Kind: types.KindString},
			{Name: "boost", Kind: types.KindFloat},
		},
	}
	for i := 0; i < 12; i++ {
		boosts.rows = append(boosts.rows, []types.Value{
			types.Str(fmt.Sprintf("S%02d", rng.Intn(30))),
			types.Float(float64(i) / 4),
		})
	}
	return []oracleTable{stocks, trades, sectors, boosts}
}

// oracleEnv loads the fixture into a fresh manager (std tables) and a
// temp-table resolver, with the requested planner mode.
func oracleEnv(t *testing.T, tables []oracleTable, fixedOrder bool) (*txn.Manager, Resolver) {
	t.Helper()
	cat := catalog.New()
	store := storage.NewStore()
	tmp := map[string]*storage.TempTable{}
	for _, ot := range tables {
		cols := make([]catalog.Column, len(ot.cols))
		copy(cols, ot.cols)
		schema := catalog.MustSchema(ot.name, cols...)
		if ot.temp {
			tt := storage.NewValueTempTable(schema)
			for _, r := range ot.rows {
				if err := tt.AppendValues(r...); err != nil {
					t.Fatal(err)
				}
			}
			tmp[ot.name] = tt
			continue
		}
		if err := cat.Define(schema); err != nil {
			t.Fatal(err)
		}
		tbl, err := store.Create(schema)
		if err != nil {
			t.Fatal(err)
		}
		for _, col := range ot.indexes {
			if err := tbl.CreateIndex(col, index.Hash); err != nil {
				t.Fatal(err)
			}
		}
	}
	mgr := txn.NewManager(cat, store, lock.New(), clock.NewVirtual(), cost.NewMeter(), cost.Default())
	mgr.PlanFixedOrder = fixedOrder
	tx := mgr.Begin()
	for _, ot := range tables {
		if ot.temp {
			continue
		}
		for _, r := range ot.rows {
			if _, err := tx.Insert(ot.name, r); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return mgr, mixedResolver{tmp: tmp}
}

// refCol addresses a column of one chosen FROM source.
type refCol struct {
	src, col int
}

// refPred is a predicate over the chosen sources: column-vs-column (join)
// or column-vs-constant.
type refPred struct {
	op    CmpOp
	left  refCol
	right *refCol     // nil = constant
	c     types.Value // constant operand when right is nil
}

type refItem struct {
	col refCol
	agg AggKind
	as  string
}

// refQuery is a generated query in both worlds: enough structure for the
// reference evaluator, convertible to a *Select for the engine.
type refQuery struct {
	from    []int // indexes into the fixture table list
	preds   []refPred
	items   []refItem
	groupBy []refCol
	orderBy []string
	desc    bool
	limit   int
}

// joinable lists the meaningful equi-join column pairs of the fixture as
// (table name, column) pairs.
var joinable = [][2][2]string{
	{{"stocks", "symbol"}, {"trades", "symbol"}},
	{{"stocks", "sector"}, {"sectors", "sector"}},
	{{"boosts", "symbol"}, {"stocks", "symbol"}},
	{{"boosts", "symbol"}, {"trades", "symbol"}},
}

func colIndex(ot oracleTable, name string) int {
	for i, c := range ot.cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// genQuery builds one random query over the fixture.
func genQuery(rng *rand.Rand, tables []oracleTable) refQuery {
	var q refQuery
	n := 1 + rng.Intn(3)
	perm := rng.Perm(len(tables))
	q.from = perm[:n]

	srcOf := map[string]int{}
	for i, ti := range q.from {
		srcOf[tables[ti].name] = i
	}
	// Every applicable equi-join predicate between chosen tables, so the
	// join graph stays connected whenever the fixture allows it.
	for _, j := range joinable {
		li, lok := srcOf[j[0][0]]
		ri, rok := srcOf[j[1][0]]
		if !lok || !rok {
			continue
		}
		lc := refCol{li, colIndex(tables[q.from[li]], j[0][1])}
		rc := refCol{ri, colIndex(tables[q.from[ri]], j[1][1])}
		q.preds = append(q.preds, refPred{op: EQ, left: lc, right: &rc})
	}
	// Up to two constant filters against values drawn from the data, so
	// equality predicates sometimes match.
	for k := rng.Intn(3); k > 0; k-- {
		si := rng.Intn(n)
		ot := tables[q.from[si]]
		ci := rng.Intn(len(ot.cols))
		val := ot.rows[rng.Intn(len(ot.rows))][ci]
		var op CmpOp
		switch ot.cols[ci].Kind {
		case types.KindString:
			op = []CmpOp{EQ, NE}[rng.Intn(2)]
		default:
			op = []CmpOp{EQ, NE, LT, LE, GT, GE}[rng.Intn(6)]
		}
		q.preds = append(q.preds, refPred{op: op, left: refCol{si, ci}, c: val})
	}

	var numeric []refCol
	for si, ti := range q.from {
		for ci, c := range tables[ti].cols {
			if c.Kind == types.KindInt || c.Kind == types.KindFloat {
				numeric = append(numeric, refCol{si, ci})
			}
		}
	}
	if len(numeric) > 0 && rng.Intn(10) < 3 {
		// Aggregate mode: optional group column plus one aggregate.
		agg := []AggKind{AggSum, AggCount, AggAvg, AggMin, AggMax}[rng.Intn(5)]
		target := numeric[rng.Intn(len(numeric))]
		if rng.Intn(4) > 0 {
			var strs []refCol
			for si, ti := range q.from {
				for ci, c := range tables[ti].cols {
					if c.Kind == types.KindString {
						strs = append(strs, refCol{si, ci})
					}
				}
			}
			g := strs[rng.Intn(len(strs))]
			q.groupBy = []refCol{g}
			q.items = []refItem{{col: g, as: "g"}, {col: target, agg: agg, as: "a"}}
		} else {
			q.items = []refItem{{col: target, agg: agg, as: "a"}}
		}
	} else {
		for k := 1 + rng.Intn(3); k > 0; k-- {
			si := rng.Intn(n)
			ot := tables[q.from[si]]
			q.items = append(q.items, refItem{
				col: refCol{si, rng.Intn(len(ot.cols))},
				as:  fmt.Sprintf("c%d", len(q.items)),
			})
		}
	}

	if rng.Intn(2) == 0 {
		for _, it := range q.items {
			if rng.Intn(2) == 0 {
				q.orderBy = append(q.orderBy, it.as)
			}
		}
		q.desc = rng.Intn(2) == 0
	}
	if len(q.orderBy) > 0 && rng.Intn(10) < 3 {
		q.limit = 1 + rng.Intn(10)
	}
	return q
}

// toSelect converts the spec into an engine query.
func (q refQuery) toSelect(tables []oracleTable) *Select {
	sel := &Select{Desc: q.desc, Limit: q.limit}
	colRef := func(rc refCol) *ColRef {
		ot := tables[q.from[rc.src]]
		return QCol(ot.name, ot.cols[rc.col].Name)
	}
	for _, ti := range q.from {
		sel.From = append(sel.From, tables[ti].name)
	}
	for _, p := range q.preds {
		if p.right != nil {
			sel.Where = append(sel.Where, Cmp(colRef(p.left), p.op, colRef(*p.right)))
		} else {
			sel.Where = append(sel.Where, Cmp(colRef(p.left), p.op, Const(p.c)))
		}
	}
	for _, it := range q.items {
		if it.agg == AggNone {
			sel.Items = append(sel.Items, Item(colRef(it.col), it.as))
		} else {
			sel.Items = append(sel.Items, AggItem(it.agg, colRef(it.col), it.as))
		}
	}
	for _, g := range q.groupBy {
		sel.GroupBy = append(sel.GroupBy, colRef(g))
	}
	sel.OrderBy = append(sel.OrderBy, q.orderBy...)
	return sel
}

func cmpVals(a, b types.Value) int { return a.Compare(b) }

// refEval runs the query naively: nested loops in FROM order, all
// predicates at the innermost level, aggregate semantics copied from the
// executor's emit/finish.
func (q refQuery) refEval(tables []oracleTable) [][]types.Value {
	data := make([][][]types.Value, len(q.from))
	for i, ti := range q.from {
		data[i] = tables[ti].rows
	}
	cur := make([][]types.Value, len(q.from))
	var joint [][][]types.Value
	var walk func(level int)
	walk = func(level int) {
		if level == len(q.from) {
			for _, p := range q.preds {
				l := cur[p.left.src][p.left.col]
				r := p.c
				if p.right != nil {
					r = cur[p.right.src][p.right.col]
				}
				c := cmpVals(l, r)
				ok := false
				switch p.op {
				case EQ:
					ok = c == 0
				case NE:
					ok = c != 0
				case LT:
					ok = c < 0
				case LE:
					ok = c <= 0
				case GT:
					ok = c > 0
				case GE:
					ok = c >= 0
				}
				if !ok {
					return
				}
			}
			row := make([][]types.Value, len(cur))
			copy(row, cur)
			joint = append(joint, row)
			return
		}
		for _, r := range data[level] {
			cur[level] = r
			walk(level + 1)
		}
	}
	walk(0)

	aggregate := false
	for _, it := range q.items {
		if it.agg != AggNone {
			aggregate = true
		}
	}
	var out [][]types.Value
	if !aggregate {
		for _, jr := range joint {
			row := make([]types.Value, len(q.items))
			for i, it := range q.items {
				row[i] = jr[it.col.src][it.col.col]
			}
			out = append(out, row)
		}
	} else {
		type group struct {
			reps   []types.Value
			counts []int64
			sums   []float64
			mins   []types.Value
			maxs   []types.Value
		}
		groups := map[types.Key]*group{}
		var seq []types.Key
		for _, jr := range joint {
			keyVals := make([]types.Value, len(q.groupBy))
			for i, g := range q.groupBy {
				keyVals[i] = jr[g.src][g.col]
			}
			key := types.MakeKey(keyVals...)
			gs, ok := groups[key]
			if !ok {
				n := len(q.items)
				gs = &group{
					reps:   make([]types.Value, n),
					counts: make([]int64, n),
					sums:   make([]float64, n),
					mins:   make([]types.Value, n),
					maxs:   make([]types.Value, n),
				}
				groups[key] = gs
				seq = append(seq, key)
			}
			for i, it := range q.items {
				v := jr[it.col.src][it.col.col]
				switch it.agg {
				case AggNone:
					if gs.counts[i] == 0 {
						gs.reps[i] = v
					}
					gs.counts[i]++
				case AggCount:
					gs.counts[i]++
				default:
					gs.counts[i]++
					gs.sums[i] += v.Float()
					if gs.mins[i].IsNull() || v.Compare(gs.mins[i]) < 0 {
						gs.mins[i] = v
					}
					if gs.maxs[i].IsNull() || v.Compare(gs.maxs[i]) > 0 {
						gs.maxs[i] = v
					}
				}
			}
		}
		for _, key := range seq {
			gs := groups[key]
			row := make([]types.Value, len(q.items))
			for i, it := range q.items {
				switch it.agg {
				case AggNone:
					row[i] = gs.reps[i]
				case AggCount:
					row[i] = types.Int(gs.counts[i])
				case AggSum:
					src := tables[q.from[it.col.src]].cols[it.col.col]
					if src.Kind == types.KindInt {
						row[i] = types.Int(int64(gs.sums[i]))
					} else {
						row[i] = types.Float(gs.sums[i])
					}
				case AggAvg:
					row[i] = types.Float(gs.sums[i] / float64(gs.counts[i]))
				case AggMin:
					row[i] = gs.mins[i]
				case AggMax:
					row[i] = gs.maxs[i]
				}
			}
			out = append(out, row)
		}
	}

	if len(q.orderBy) > 0 {
		cols := make([]int, len(q.orderBy))
		for i, name := range q.orderBy {
			for j, it := range q.items {
				if it.as == name {
					cols[i] = j
				}
			}
		}
		sort.SliceStable(out, func(a, b int) bool {
			for _, c := range cols {
				cmp := out[a][c].Compare(out[b][c])
				if cmp != 0 {
					if q.desc {
						return cmp > 0
					}
					return cmp < 0
				}
			}
			return false
		})
	}
	return out
}

func rowKey(r []types.Value) string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = fmt.Sprintf("%d:%s", v.Kind(), v.String())
	}
	return strings.Join(parts, "\x00")
}

func multiset(rows [][]types.Value) map[string]int {
	m := map[string]int{}
	for _, r := range rows {
		m[rowKey(r)]++
	}
	return m
}

func multisetEqual(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

// sortKeySeq extracts the ORDER BY key tuple of each row, in order.
func sortKeySeq(q refQuery, rows [][]types.Value) []string {
	cols := make([]int, len(q.orderBy))
	for i, name := range q.orderBy {
		for j, it := range q.items {
			if it.as == name {
				cols[i] = j
			}
		}
	}
	keys := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(cols))
		for j, c := range cols {
			parts[j] = r[c].String()
		}
		keys[i] = strings.Join(parts, "\x00")
	}
	return keys
}

func subMultiset(sub, super map[string]int) bool {
	for k, n := range sub {
		if super[k] < n {
			return false
		}
	}
	return true
}

// checkOracle compares one engine result against the reference, honoring
// ordering and LIMIT tie semantics: without ORDER BY results compare as
// multisets; with ORDER BY the sort-key sequence must match exactly (tie
// order within equal keys is unspecified); with LIMIT the engine rows
// must be a sub-multiset of the reference with the right key prefix.
func checkOracle(t *testing.T, q refQuery, label string, got [][]types.Value, want [][]types.Value) {
	t.Helper()
	fail := func(msg string) {
		t.Fatalf("%s: %s\nquery: %+v\ngot %d rows, want %d", label, msg, q, len(got), len(want))
	}
	if q.limit > 0 {
		wantN := len(want)
		if q.limit < wantN {
			wantN = q.limit
		}
		if len(got) != wantN {
			fail("row count under LIMIT")
		}
		if !subMultiset(multiset(got), multiset(want)) {
			fail("LIMIT rows are not drawn from the reference result")
		}
		wantKeys := sortKeySeq(q, want)[:wantN]
		gotKeys := sortKeySeq(q, got)
		for i := range wantKeys {
			if gotKeys[i] != wantKeys[i] {
				fail(fmt.Sprintf("sort-key prefix diverges at row %d", i))
			}
		}
		return
	}
	if !multisetEqual(multiset(got), multiset(want)) {
		fail("row multisets differ")
	}
	if len(q.orderBy) > 0 {
		wantKeys := sortKeySeq(q, want)
		gotKeys := sortKeySeq(q, got)
		for i := range wantKeys {
			if gotKeys[i] != wantKeys[i] {
				fail(fmt.Sprintf("sort-key order diverges at row %d", i))
			}
		}
	}
}

func TestOracleEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(8080))
	tables := oracleTables(rng)

	type engineMode struct {
		name  string
		fixed bool
	}
	envs := make(map[string]struct {
		mgr *txn.Manager
		res Resolver
	})
	for _, m := range []engineMode{{"fixed", true}, {"cost", false}} {
		mgr, res := oracleEnv(t, tables, m.fixed)
		envs[m.name] = struct {
			mgr *txn.Manager
			res Resolver
		}{mgr, res}
	}

	const queries = 300
	for i := 0; i < queries; i++ {
		q := genQuery(rng, tables)
		want := q.refEval(tables)
		for _, planner := range []string{"fixed", "cost"} {
			env := envs[planner]
			for _, readMode := range []string{"locked", "snapshot"} {
				sel := q.toSelect(tables)
				var tx *txn.Txn
				if readMode == "snapshot" {
					tx = env.mgr.BeginReadOnly()
				} else {
					tx = env.mgr.Begin()
				}
				out, err := sel.Run(tx, env.res)
				if err != nil {
					t.Fatalf("query %d (%s/%s): %v\nspec: %+v", i, planner, readMode, err, q)
				}
				got := make([][]types.Value, out.Len())
				for r := range got {
					got[r] = out.Row(r)
				}
				out.Retire()
				if err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
				checkOracle(t, q, fmt.Sprintf("query %d (%s/%s)", i, planner, readMode), got, want)
			}
		}
	}
}
