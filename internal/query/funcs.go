package query

import (
	"sync"

	"github.com/stripdb/strip/internal/types"
)

// ScalarFunc is a registered scalar function callable from queries
// (paper §3 uses f_BS in the option_prices view definition).
type ScalarFunc func(args []types.Value) (types.Value, error)

var (
	funcMu   sync.RWMutex
	funcsReg = map[string]ScalarFunc{}
)

// RegisterFunc installs a scalar function under a name, replacing any
// previous registration.
func RegisterFunc(name string, fn ScalarFunc) {
	funcMu.Lock()
	defer funcMu.Unlock()
	funcsReg[name] = fn
}

// LookupFunc finds a registered scalar function.
func LookupFunc(name string) (ScalarFunc, bool) {
	funcMu.RLock()
	defer funcMu.RUnlock()
	fn, ok := funcsReg[name]
	return fn, ok
}
