package query

import (
	"fmt"

	"github.com/stripdb/strip/internal/storage"
	"github.com/stripdb/strip/internal/txn"
	"github.com/stripdb/strip/internal/types"
)

// InsertStmt inserts literal rows into a table.
type InsertStmt struct {
	Table string
	Rows  [][]types.Value
}

// Run executes the insert, returning the number of rows inserted.
func (s *InsertStmt) Run(tx *txn.Txn) (int, error) {
	tx.Charge(tx.Model().StmtSetup)
	for i, row := range s.Rows {
		if _, err := tx.Insert(s.Table, row); err != nil {
			return i, err
		}
	}
	return len(s.Rows), nil
}

// SetClause assigns an expression to a column in an UPDATE.
type SetClause struct {
	Col  string
	Expr Expr
	// AddTo marks `SET col += expr` (the paper's rules use this form for
	// incremental view maintenance).
	AddTo bool
}

// UpdateStmt is `UPDATE table SET ... WHERE ...`. Set expressions and
// predicates may reference only the target table's columns.
type UpdateStmt struct {
	Table string
	Set   []SetClause
	Where []Pred
}

// Run executes the update, returning the number of rows changed.
func (s *UpdateStmt) Run(tx *txn.Txn) (int, error) {
	tx.Charge(tx.Model().StmtSetup)
	recs, srcs, err := collectTargets(tx, s.Table, s.Where)
	if err != nil {
		return 0, err
	}
	for i := range s.Set {
		if err := s.Set[i].Expr.resolve(srcs); err != nil {
			return 0, err
		}
	}
	tbl := srcs[0]
	schema := tbl.schema
	setIdx := make([]int, len(s.Set))
	for i, sc := range s.Set {
		ci := schema.ColIndex(sc.Col)
		if ci < 0 {
			return 0, fmt.Errorf("query: table %s has no column %q", s.Table, sc.Col)
		}
		setIdx[i] = ci
	}
	for _, rec := range recs {
		cur := []cursor{{src: tbl, rec: rec}}
		vals := rec.Values()
		for i, sc := range s.Set {
			v, err := sc.Expr.eval(cur)
			if err != nil {
				return 0, err
			}
			if sc.AddTo {
				v, err = types.Add(vals[setIdx[i]], v)
				if err != nil {
					return 0, err
				}
			}
			vals[setIdx[i]] = v
		}
		if _, err := tx.Update(s.Table, rec, vals); err != nil {
			return 0, err
		}
	}
	return len(recs), nil
}

// DeleteStmt is `DELETE FROM table WHERE ...`.
type DeleteStmt struct {
	Table string
	Where []Pred
}

// Run executes the delete, returning the number of rows removed.
func (s *DeleteStmt) Run(tx *txn.Txn) (int, error) {
	tx.Charge(tx.Model().StmtSetup)
	recs, _, err := collectTargets(tx, s.Table, s.Where)
	if err != nil {
		return 0, err
	}
	for _, rec := range recs {
		if err := tx.Delete(s.Table, rec); err != nil {
			return 0, err
		}
	}
	return len(recs), nil
}

// collectTargets gathers the records matching the WHERE clause before any
// mutation (a statement must not observe its own writes mid-scan). Indexed
// probes take the table's IX intent plus X locks on just the probed rows, so
// statements targeting different rows of one table run in parallel;
// scan-driven statements escalate to a full table X up front.
func collectTargets(tx *txn.Txn, table string, where []Pred) ([]*storage.Record, []*source, error) {
	model := tx.Model()
	tbl, err := tx.WriteIntent(table)
	if err != nil {
		return nil, nil, err
	}
	src := &source{name: table, schema: tbl.Schema(), tbl: tbl}
	srcs := []*source{src}
	for i := range where {
		if err := where[i].resolve(srcs); err != nil {
			return nil, nil, err
		}
	}

	// Use an index when a predicate is `indexedCol = const`.
	var probeCol string
	var probeVal types.Value
	residual := where
	for i, p := range where {
		cr, val, ok := constEq(p)
		if ok && tbl.HasIndex(cr.Col) {
			probeCol, probeVal = cr.Col, val
			residual = append(append([]Pred{}, where[:i]...), where[i+1:]...)
			break
		}
	}

	var recs []*storage.Record
	match := func(r *storage.Record) (bool, error) {
		cur := []cursor{{src: src, rec: r}}
		for _, p := range residual {
			ok, err := p.eval(cur)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
		return true, nil
	}

	tx.Charge(model.OpenCursor)
	if probeCol != "" {
		tx.Charge(model.IndexProbe)
		candidates, err := lockedWriteLookup(tx, table, tbl, probeCol, probeVal)
		if err != nil {
			return nil, nil, err
		}
		for _, r := range candidates {
			tx.Charge(model.FetchCursor)
			ok, err := match(r)
			if err != nil {
				return nil, nil, err
			}
			if ok {
				recs = append(recs, r)
			}
		}
	} else {
		// No usable index: the statement reads the whole table to decide
		// its targets, so take the full X (write-side escalation).
		if _, err := tx.WriteTable(table); err != nil {
			return nil, nil, err
		}
		var scanErr error
		tbl.Scan(func(r *storage.Record) bool {
			tx.Charge(model.ScanRow)
			ok, err := match(r)
			if err != nil {
				scanErr = err
				return false
			}
			if ok {
				recs = append(recs, r)
			}
			return true
		})
		if scanErr != nil {
			return nil, nil, scanErr
		}
	}
	tx.Charge(model.CloseCursor)
	return recs, srcs, nil
}

// lockedWriteLookup probes the index and X-locks the rows it returns,
// retrying when a row was replaced while the lock request waited (the
// replacement keeps the lock ID, so the retry's re-probe is already
// covered). Persistent churn escalates to a full table X.
func lockedWriteLookup(tx *txn.Txn, name string, tbl *storage.Table, col string, v types.Value) ([]*storage.Record, error) {
	const maxAttempts = 3
	for attempt := 0; attempt < maxAttempts; attempt++ {
		recs, _ := tbl.IndexLookup(col, v)
		out := recs[:0]
		stale := false
		for _, r := range recs {
			if err := tx.LockRecordExclusive(name, r.ID()); err != nil {
				return nil, err
			}
			if !r.Live() {
				stale = true
				break
			}
			out = append(out, r)
		}
		if !stale {
			return out, nil
		}
	}
	if _, err := tx.WriteTable(name); err != nil {
		return nil, err
	}
	recs, _ := tbl.IndexLookup(col, v)
	return recs, nil
}

// constEq recognizes `col = literal` (either side).
func constEq(p Pred) (*ColRef, types.Value, bool) {
	if p.Op != EQ {
		return nil, types.Null(), false
	}
	if cr, ok := p.Left.(*ColRef); ok {
		if c, ok2 := p.Right.(*ConstExpr); ok2 {
			return cr, c.Val, true
		}
	}
	if cr, ok := p.Right.(*ColRef); ok {
		if c, ok2 := p.Left.(*ConstExpr); ok2 {
			return cr, c.Val, true
		}
	}
	return nil, types.Null(), false
}
