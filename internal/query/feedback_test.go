package query

import (
	"fmt"
	"testing"

	"github.com/stripdb/strip/internal/obs"
	"github.com/stripdb/strip/internal/types"
)

// Selectivity feedback: a cached plan whose actual output repeatedly
// drifts ≥4x from the planner's estimate is invalidated and rebuilt from
// fresh statistics, counted in query.plan_feedback_rebuilds.
func TestPlanFeedbackRebuildOnDrift(t *testing.T) {
	mgr := env(t)
	builds := mgr.Obs.Counter(obs.MQueryPlanBuilds)
	feedback := mgr.Obs.Counter(obs.MQueryPlanFeedbackRebuilds)

	// 97 more stocks, every one priced 7: an equality on the unindexed
	// price column matches ~everything while the planner's default
	// equality selectivity estimates 10% — a 10x drift each run.
	tx := mgr.Begin()
	for i := 0; i < 97; i++ {
		if _, err := tx.Insert("stocks", []types.Value{
			types.Str(fmt.Sprintf("F%03d", i)), types.Float(7)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	q := &Select{
		Items: []SelectItem{Item(Col("symbol"), "")},
		From:  []string{"stocks"},
		Where: []Pred{Eq(Col("price"), Const(types.Float(7)))},
	}
	run := func() {
		t.Helper()
		tx := mgr.Begin()
		res, err := q.Run(tx, TxnResolver{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != 97 {
			t.Fatalf("rows = %d", res.Len())
		}
		res.Retire()
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	b0, f0 := builds.Load(), feedback.Load()
	// Three drifting runs arm invalidation; the fourth replans.
	for i := 0; i < 3; i++ {
		run()
	}
	if got := builds.Load() - b0; got != 1 {
		t.Fatalf("builds before trip = %d, want 1", got)
	}
	run()
	if got := builds.Load() - b0; got != 2 {
		t.Fatalf("builds after trip = %d, want 2 (feedback rebuild)", got)
	}
	if got := feedback.Load() - f0; got != 1 {
		t.Fatalf("feedback rebuilds = %d, want 1", got)
	}

	// The rebuilt plan runs with a wider drift allowance, so the same
	// drift does not thrash the cache: ten more runs, zero rebuilds.
	b1 := builds.Load()
	for i := 0; i < 10; i++ {
		run()
	}
	if got := builds.Load() - b1; got != 0 {
		t.Fatalf("rebuilt plan thrashed: %d extra builds", got)
	}
}

// Plans whose estimates hold (or whose outputs are too small to judge)
// never trigger feedback rebuilds.
func TestPlanFeedbackQuietWhenAccurate(t *testing.T) {
	mgr := env(t)
	builds := mgr.Obs.Counter(obs.MQueryPlanBuilds)

	q := &Select{
		Items: []SelectItem{Item(Col("price"), "")},
		From:  []string{"stocks"},
		Where: []Pred{Eq(Col("symbol"), Const(types.Str("S1")))},
	}
	b0 := builds.Load()
	for i := 0; i < 10; i++ {
		tx := mgr.Begin()
		res, err := q.Run(tx, TxnResolver{})
		if err != nil {
			t.Fatal(err)
		}
		res.Retire()
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if got := builds.Load() - b0; got != 1 {
		t.Fatalf("builds = %d, want 1 (no feedback churn)", got)
	}
}
