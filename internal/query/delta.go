package query

import (
	"errors"

	"github.com/stripdb/strip/internal/txn"
	"github.com/stripdb/strip/internal/types"
)

// ErrDeltaInconsistent reports that applying a maintenance delta found the
// derived table in a state the delta cannot have produced — a group row
// missing where the delta expects one, a duplicate group row, or a support
// count driven negative. The caller (the generated maintenance action)
// falls back to a full recompute inside the same transaction, so the
// derived table self-heals.
var ErrDeltaInconsistent = errors.New("query: derived table inconsistent with delta")

// AggDelta is the net change to one group of an aggregation view: the
// signed sum delta for the value column and the signed row-support delta
// for the count column (inserted/new rows contribute +1, deleted/old rows
// contribute −1).
type AggDelta struct {
	Key   types.Value
	Sum   float64
	Count int64
}

// ApplyAggDeltas applies per-group deltas to an aggregation view in
// O(deltas): each group is add-updated through the view's key index; a
// group that vanishes (support count reaches zero) is deleted, and a group
// that appears is inserted. Blind `+=` updates commute under the record X
// locks the update path takes, so concurrent maintenance tasks interleave
// safely. Returns the number of groups touched.
//
// Consistency checks (any failure returns ErrDeltaInconsistent and leaves
// the remaining deltas unapplied, so the caller can rebuild wholesale):
//
//   - a delta whose group row is missing must be a pure insertion
//     (Count > 0) — a sum-only delta against a missing row means the view
//     lost state;
//   - more than one row per group key means the view gained state;
//   - a group driven to negative support means the view and the delta
//     disagree about the group's history.
func ApplyAggDeltas(tx *txn.Txn, table, keyCol, valCol, cntCol string, deltas []AggDelta) (int, error) {
	applied := 0
	for _, d := range deltas {
		if d.Sum == 0 && d.Count == 0 {
			continue
		}
		matched, err := (&UpdateStmt{
			Table: table,
			Set: []SetClause{
				{Col: valCol, Expr: Const(types.Float(d.Sum)), AddTo: true},
				{Col: cntCol, Expr: Const(types.Int(d.Count)), AddTo: true},
			},
			Where: []Pred{Eq(Col(keyCol), Const(d.Key))},
		}).Run(tx)
		if err != nil {
			return applied, err
		}
		switch {
		case matched > 1:
			return applied, ErrDeltaInconsistent
		case matched == 0:
			if d.Count <= 0 {
				return applied, ErrDeltaInconsistent
			}
			if _, err := (&InsertStmt{
				Table: table,
				Rows:  [][]types.Value{{d.Key, types.Float(d.Sum), types.Int(d.Count)}},
			}).Run(tx); err != nil {
				return applied, err
			}
		case d.Count < 0:
			// The group lost support; drop it if the count reached zero.
			// The count guard rides in the WHERE so the decision is made
			// under the same X lock as the delete — no locked re-read.
			if _, err := (&DeleteStmt{
				Table: table,
				Where: []Pred{
					Eq(Col(keyCol), Const(d.Key)),
					Cmp(Col(cntCol), LE, Const(types.Int(0))),
				},
			}).Run(tx); err != nil {
				return applied, err
			}
		}
		applied++
	}
	return applied, nil
}

// RowDelta is the fresh value of one per-row-function view row.
type RowDelta struct {
	Key types.Value
	Val types.Value
}

// ApplyRowDeltas applies per-row recompute results to a per-row-function
// view in O(deltas): each fresh (key, value) pair rewrites its view row
// through the key index (insert on miss — a base row joined a new view
// key), and each stale key — a key whose base row was deleted or re-keyed
// and which no fresh result re-covers — is deleted. Duplicate fresh keys
// resolve last-write-wins, matching the batched-update semantics of the
// seed maintenance rule. Returns the number of view rows touched.
//
// A key matching more than one view row trips ErrDeltaInconsistent (the
// view's key column is unique by construction).
func ApplyRowDeltas(tx *txn.Txn, table, keyCol, valCol string, fresh []RowDelta, stale []types.Value) (int, error) {
	applied := 0
	covered := make(map[types.Value]bool, len(fresh))
	for _, d := range fresh {
		matched, err := (&UpdateStmt{
			Table: table,
			Set:   []SetClause{{Col: valCol, Expr: Const(d.Val)}},
			Where: []Pred{Eq(Col(keyCol), Const(d.Key))},
		}).Run(tx)
		if err != nil {
			return applied, err
		}
		switch {
		case matched > 1:
			return applied, ErrDeltaInconsistent
		case matched == 0:
			if _, err := (&InsertStmt{
				Table: table,
				Rows:  [][]types.Value{{d.Key, d.Val}},
			}).Run(tx); err != nil {
				return applied, err
			}
		}
		covered[d.Key] = true
		applied++
	}
	for _, k := range stale {
		if covered[k] {
			continue
		}
		covered[k] = true
		n, err := (&DeleteStmt{
			Table: table,
			Where: []Pred{Eq(Col(keyCol), Const(k))},
		}).Run(tx)
		if err != nil {
			return applied, err
		}
		if n > 1 {
			return applied, ErrDeltaInconsistent
		}
		applied += n
	}
	return applied, nil
}
