// Package query implements STRIP's SQL-subset query engine: select-project-
// join with group-by aggregation over standard and temporary tables, plus
// INSERT/UPDATE/DELETE statement execution. Query results materialize as
// temporary tables in the paper's §6.1 pointer representation whenever the
// select list allows it.
package query

import (
	"fmt"
	"strings"

	"github.com/stripdb/strip/internal/types"
)

// Expr is a scalar expression evaluated against a row binding.
type Expr interface {
	// resolve binds column references to (source, column) positions.
	resolve(srcs []*source) error
	// eval computes the expression for the current cursor positions.
	eval(cur []cursor) (types.Value, error)
	// String renders the expression (diagnostics, plan dumps).
	String() string
	// walk visits the expression tree.
	walk(fn func(Expr))
	// clone deep-copies the expression so each Run resolves privately.
	clone() Expr
}

// ColRef names a column, optionally qualified by table (or alias).
type ColRef struct {
	Table string // optional qualifier
	Col   string

	src, col int // resolved position
}

// Col builds an unqualified column reference.
func Col(name string) *ColRef { return &ColRef{Col: name} }

// QCol builds a table-qualified column reference.
func QCol(table, col string) *ColRef { return &ColRef{Table: table, Col: col} }

func (c *ColRef) resolve(srcs []*source) error {
	found := -1
	for i, s := range srcs {
		if c.Table != "" && s.name != c.Table {
			continue
		}
		if ci := s.schema.ColIndex(c.Col); ci >= 0 {
			if found >= 0 {
				return fmt.Errorf("query: column %s is ambiguous", c)
			}
			found = i
			c.src, c.col = i, ci
		}
	}
	if found < 0 {
		return fmt.Errorf("query: column %s not found", c)
	}
	return nil
}

func (c *ColRef) eval(cur []cursor) (types.Value, error) {
	return cur[c.src].value(c.col), nil
}

// String renders the reference.
func (c *ColRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Col
	}
	return c.Col
}

func (c *ColRef) walk(fn func(Expr)) { fn(c) }

func (c *ColRef) clone() Expr { cp := *c; return &cp }

// cloneRef deep-copies a column reference.
func (c *ColRef) cloneRef() *ColRef { cp := *c; return &cp }

// ConstExpr is a literal value.
type ConstExpr struct{ Val types.Value }

// Const builds a literal expression.
func Const(v types.Value) *ConstExpr { return &ConstExpr{Val: v} }

func (c *ConstExpr) resolve([]*source) error { return nil }

func (c *ConstExpr) eval([]cursor) (types.Value, error) { return c.Val, nil }

// String renders the literal.
func (c *ConstExpr) String() string { return c.Val.String() }

func (c *ConstExpr) walk(fn func(Expr)) { fn(c) }

func (c *ConstExpr) clone() Expr { cp := *c; return &cp }

// BinExpr is an arithmetic expression.
type BinExpr struct {
	Op          byte // + - * /
	Left, Right Expr
}

// Arith builds an arithmetic expression.
func Arith(left Expr, op byte, right Expr) *BinExpr {
	return &BinExpr{Op: op, Left: left, Right: right}
}

func (b *BinExpr) resolve(srcs []*source) error {
	if err := b.Left.resolve(srcs); err != nil {
		return err
	}
	return b.Right.resolve(srcs)
}

func (b *BinExpr) eval(cur []cursor) (types.Value, error) {
	l, err := b.Left.eval(cur)
	if err != nil {
		return types.Null(), err
	}
	r, err := b.Right.eval(cur)
	if err != nil {
		return types.Null(), err
	}
	switch b.Op {
	case '+':
		return types.Add(l, r)
	case '-':
		return types.Sub(l, r)
	case '*':
		return types.Mul(l, r)
	case '/':
		return types.Div(l, r)
	default:
		return types.Null(), fmt.Errorf("query: unknown operator %c", b.Op)
	}
}

// String renders the expression.
func (b *BinExpr) String() string {
	return fmt.Sprintf("(%s %c %s)", b.Left, b.Op, b.Right)
}

func (b *BinExpr) walk(fn func(Expr)) {
	fn(b)
	b.Left.walk(fn)
	b.Right.walk(fn)
}

func (b *BinExpr) clone() Expr {
	return &BinExpr{Op: b.Op, Left: b.Left.clone(), Right: b.Right.clone()}
}

// FuncExpr calls a registered scalar function (e.g. f_BS, the Black-Scholes
// pricing function the PTA registers; paper §3).
type FuncExpr struct {
	Name string
	Args []Expr

	fn ScalarFunc
}

// Call builds a scalar function call.
func Call(name string, args ...Expr) *FuncExpr { return &FuncExpr{Name: name, Args: args} }

func (f *FuncExpr) resolve(srcs []*source) error {
	fn, ok := LookupFunc(f.Name)
	if !ok {
		return fmt.Errorf("query: unknown function %q", f.Name)
	}
	f.fn = fn
	for _, a := range f.Args {
		if err := a.resolve(srcs); err != nil {
			return err
		}
	}
	return nil
}

func (f *FuncExpr) eval(cur []cursor) (types.Value, error) {
	args := make([]types.Value, len(f.Args))
	for i, a := range f.Args {
		v, err := a.eval(cur)
		if err != nil {
			return types.Null(), err
		}
		args[i] = v
	}
	return f.fn(args)
}

// String renders the call.
func (f *FuncExpr) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return f.Name + "(" + strings.Join(parts, ", ") + ")"
}

func (f *FuncExpr) walk(fn func(Expr)) {
	fn(f)
	for _, a := range f.Args {
		a.walk(fn)
	}
}

func (f *FuncExpr) clone() Expr {
	args := make([]Expr, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.clone()
	}
	return &FuncExpr{Name: f.Name, Args: args}
}

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// String renders the operator.
func (o CmpOp) String() string {
	switch o {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return "?"
	}
}

func (o CmpOp) holds(c int) bool {
	switch o {
	case EQ:
		return c == 0
	case NE:
		return c != 0
	case LT:
		return c < 0
	case LE:
		return c <= 0
	case GT:
		return c > 0
	case GE:
		return c >= 0
	default:
		return false
	}
}

// Pred is a comparison predicate; WHERE clauses are conjunctions of Preds.
type Pred struct {
	Op          CmpOp
	Left, Right Expr
}

// Cmp builds a predicate.
func Cmp(left Expr, op CmpOp, right Expr) Pred { return Pred{Op: op, Left: left, Right: right} }

// Eq builds an equality predicate.
func Eq(left, right Expr) Pred { return Cmp(left, EQ, right) }

func (p Pred) resolve(srcs []*source) error {
	if err := p.Left.resolve(srcs); err != nil {
		return err
	}
	return p.Right.resolve(srcs)
}

func (p Pred) eval(cur []cursor) (bool, error) {
	l, err := p.Left.eval(cur)
	if err != nil {
		return false, err
	}
	r, err := p.Right.eval(cur)
	if err != nil {
		return false, err
	}
	return p.Op.holds(l.Compare(r)), nil
}

func (p Pred) clone() Pred {
	return Pred{Op: p.Op, Left: p.Left.clone(), Right: p.Right.clone()}
}

// String renders the predicate.
func (p Pred) String() string {
	return fmt.Sprintf("%s %s %s", p.Left, p.Op, p.Right)
}

// RewriteRefs returns a copy of e with every column reference replaced by
// rename's result (rename may return its argument unchanged). The view
// generator uses this to retarget base-table references onto the new/old
// transition tables.
func RewriteRefs(e Expr, rename func(*ColRef) *ColRef) Expr {
	switch x := e.(type) {
	case *ColRef:
		out := rename(x)
		cp := *out
		return &cp
	case *ConstExpr:
		return x.clone()
	case *BinExpr:
		return &BinExpr{Op: x.Op, Left: RewriteRefs(x.Left, rename), Right: RewriteRefs(x.Right, rename)}
	case *FuncExpr:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = RewriteRefs(a, rename)
		}
		return &FuncExpr{Name: x.Name, Args: args}
	default:
		return e
	}
}

// Refs collects the column references in an expression.
func Refs(e Expr) []*ColRef {
	var out []*ColRef
	e.walk(func(x Expr) {
		if c, ok := x.(*ColRef); ok {
			out = append(out, c)
		}
	})
	return out
}

// FoldConst evaluates an expression that references no columns, returning
// ok=false when the expression depends on row data. Used by the SQL parser
// for literal contexts (INSERT values with signs or arithmetic).
func FoldConst(e Expr) (types.Value, bool) {
	hasCol := false
	e.walk(func(x Expr) {
		if _, isCol := x.(*ColRef); isCol {
			hasCol = true
		}
	})
	if hasCol {
		return types.Null(), false
	}
	if err := e.resolve(nil); err != nil {
		return types.Null(), false
	}
	v, err := e.eval(nil)
	if err != nil {
		return types.Null(), false
	}
	return v, true
}

// maxSource returns the highest source index referenced by the predicate,
// used to schedule residual predicates at the earliest join level.
func (p Pred) maxSource() int {
	max := -1
	for _, e := range []Expr{p.Left, p.Right} {
		e.walk(func(x Expr) {
			if c, ok := x.(*ColRef); ok && c.src > max {
				max = c.src
			}
		})
	}
	return max
}
