package plan

import (
	"math/rand"
	"reflect"
	"testing"
)

var testCosts = Costs{IndexProbe: 25, ScanRow: 5, JoinRow: 20}

// Three-table trading shape: a tiny sectors table, a mid-size stocks
// table indexed on symbol, and a large trades table indexed on symbol
// and trade_id.
func tradingTables() []Table {
	return []Table{
		{Name: "sectors", Rows: 20},
		{Name: "stocks", Rows: 2000, IndexKeys: map[string]int{"symbol": 2000}},
		{Name: "trades", Rows: 20000, IndexKeys: map[string]int{"symbol": 2000, "trade_id": 20000}},
	}
}

// sectors.name = stocks.sector AND stocks.symbol = trades.symbol AND
// trades.trade_id = <const>
func tradingPreds() []Pred {
	return []Pred{
		{Srcs: []int{0, 1}, Class: Eq, Probes: []Probe{
			{Src: 0, Col: "name", OtherSrcs: []int{1}},
			{Src: 1, Col: "sector", OtherSrcs: []int{0}},
		}},
		{Srcs: []int{1, 2}, Class: Eq, Probes: []Probe{
			{Src: 1, Col: "symbol", OtherSrcs: []int{2}},
			{Src: 2, Col: "symbol", OtherSrcs: []int{1}},
		}},
		{Srcs: []int{2}, Class: Eq, Probes: []Probe{
			{Src: 2, Col: "trade_id", OtherSrcs: nil},
		}},
	}
}

func TestFixedOrderMatchesSeedPlan(t *testing.T) {
	res := Choose(tradingTables(), tradingPreds(), Options{FixedOrder: true, Costs: testCosts})
	if got := res.Order(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("fixed order = %v, want FROM order", got)
	}
	// Seed behavior: pred 0 lands at level 1 (probe stocks.symbol? no —
	// candidate 1 probes stocks.sector, unindexed, so residual); pred 1
	// lands at level 2 probing trades.symbol (candidate 1); pred 2 is a
	// level-2 residual because the probe slot is taken first-come.
	if res.Levels[1].ProbePred != -1 || !reflect.DeepEqual(res.Levels[1].Residuals, []int{0}) {
		t.Fatalf("level 1 = %+v, want residual pred 0 and no probe", res.Levels[1])
	}
	if res.Levels[2].ProbePred != 1 || res.Levels[2].ProbeCand != 1 {
		t.Fatalf("level 2 probe = %d/%d, want pred 1 cand 1", res.Levels[2].ProbePred, res.Levels[2].ProbeCand)
	}
	if !reflect.DeepEqual(res.Levels[2].Residuals, []int{2}) {
		t.Fatalf("level 2 residuals = %v, want [2]", res.Levels[2].Residuals)
	}
	if !Covered(res, 3) {
		t.Fatalf("predicates not covered exactly once: %+v", res)
	}
	if !res.FixedOrder {
		t.Fatalf("FixedOrder flag not set")
	}
}

func TestCostOrderExploitsConstProbe(t *testing.T) {
	res := Choose(tradingTables(), tradingPreds(), Options{Costs: testCosts})
	// The constant trade_id probe makes trades the cheapest start
	// (1 probe vs a 20-row scan of sectors); stocks then probes on
	// symbol; sectors last.
	if got := res.Order(); !reflect.DeepEqual(got, []int{2, 1, 0}) {
		t.Fatalf("cost order = %v, want [2 1 0]", got)
	}
	if res.Levels[0].ProbePred != 2 {
		t.Fatalf("level 0 should probe trades.trade_id, got %+v", res.Levels[0])
	}
	if res.Levels[1].ProbePred != 1 || res.Levels[1].ProbeCand != 0 {
		t.Fatalf("level 1 should probe stocks.symbol, got %+v", res.Levels[1])
	}
	if !Covered(res, 3) {
		t.Fatalf("predicates not covered exactly once: %+v", res)
	}
	fixed := Choose(tradingTables(), tradingPreds(), Options{FixedOrder: true, Costs: testCosts})
	if res.EstCost >= fixed.EstCost {
		t.Fatalf("cost order estimate %.0f should beat fixed order %.0f", res.EstCost, fixed.EstCost)
	}
}

func TestCostOrderPrefersSmallOuterWithoutIndexes(t *testing.T) {
	tables := []Table{
		{Name: "big", Rows: 10000},
		{Name: "small", Rows: 10},
	}
	preds := []Pred{{Srcs: []int{0, 1}, Class: Eq}}
	res := Choose(tables, preds, Options{Costs: testCosts})
	if got := res.Order(); !reflect.DeepEqual(got, []int{1, 0}) {
		t.Fatalf("order = %v, want small table first", got)
	}
	if !Covered(res, 1) {
		t.Fatalf("predicate lost: %+v", res)
	}
}

func TestConstPredicatesReported(t *testing.T) {
	tables := []Table{{Name: "t", Rows: 5}}
	preds := []Pred{
		{Srcs: nil, Class: Eq},
		{Srcs: []int{0}, Class: Range},
	}
	for _, fixed := range []bool{false, true} {
		res := Choose(tables, preds, Options{FixedOrder: fixed, Costs: testCosts})
		if !reflect.DeepEqual(res.Consts, []int{0}) {
			t.Fatalf("fixed=%v consts = %v, want [0]", fixed, res.Consts)
		}
		if !Covered(res, 2) {
			t.Fatalf("fixed=%v coverage broken: %+v", fixed, res)
		}
	}
}

func TestEstimatesMonotoneAndPositive(t *testing.T) {
	res := Choose(tradingTables(), tradingPreds(), Options{Costs: testCosts})
	for i, lv := range res.Levels {
		if lv.EstCost <= 0 || lv.EstAccess < 0 || lv.EstOut < 0 {
			t.Fatalf("level %d has degenerate estimates: %+v", i, lv)
		}
		if lv.EstOut > lv.EstAccess {
			t.Fatalf("level %d residuals grew the estimate: %+v", i, lv)
		}
	}
	if res.EstRows != res.Levels[len(res.Levels)-1].EstOut {
		t.Fatalf("EstRows %v != last level EstOut", res.EstRows)
	}
}

// Randomized structural check: whatever the shape, both modes place
// every source exactly once and every predicate exactly once.
func TestRandomizedCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 500; iter++ {
		n := 1 + rng.Intn(4)
		tables := make([]Table, n)
		for i := range tables {
			tables[i] = Table{Name: "t", Rows: rng.Intn(5000)}
			if rng.Intn(2) == 0 {
				tables[i].IndexKeys = map[string]int{"k": 1 + rng.Intn(1000)}
			}
		}
		var preds []Pred
		for pi := 0; pi < rng.Intn(5); pi++ {
			p := Pred{Class: Class(rng.Intn(3))}
			for s := 0; s < n; s++ {
				if rng.Intn(2) == 0 {
					p.Srcs = append(p.Srcs, s)
				}
			}
			if p.Class == Eq && len(p.Srcs) > 0 && rng.Intn(2) == 0 {
				tgt := p.Srcs[rng.Intn(len(p.Srcs))]
				var others []int
				for _, s := range p.Srcs {
					if s != tgt {
						others = append(others, s)
					}
				}
				p.Probes = []Probe{{Src: tgt, Col: "k", OtherSrcs: others}}
			}
			preds = append(preds, p)
		}
		for _, fixed := range []bool{false, true} {
			res := Choose(tables, preds, Options{FixedOrder: fixed, Costs: testCosts})
			if len(res.Levels) != n {
				t.Fatalf("iter %d fixed=%v: %d levels for %d tables", iter, fixed, len(res.Levels), n)
			}
			seen := make([]bool, n)
			for _, lv := range res.Levels {
				if seen[lv.Src] {
					t.Fatalf("iter %d fixed=%v: source %d placed twice", iter, fixed, lv.Src)
				}
				seen[lv.Src] = true
			}
			if !Covered(res, len(preds)) {
				t.Fatalf("iter %d fixed=%v: predicate coverage broken: %+v", iter, fixed, res)
			}
		}
	}
}

// The delta-maintenance trap: a large unindexed transition leaf joined to
// a small indexed dimension. Immediate-cost greedy would start from the
// cheaper dimension scan and then have nothing to probe into the leaf,
// costing |dim|·|leaf|; the one-level lookahead sees that starting from
// the leaf buys |leaf| index probes into the dimension instead.
func TestCostOrderLookaheadScansDeltaLeafFirst(t *testing.T) {
	tables := []Table{
		{Name: "dim", Rows: 50, IndexKeys: map[string]int{"jc": 50}},
		{Name: "leaf", Rows: 5000}, // transition temp table: no indexes
	}
	preds := []Pred{
		{Srcs: []int{0, 1}, Class: Eq, Probes: []Probe{
			{Src: 0, Col: "jc", OtherSrcs: []int{1}},
		}},
	}
	res := Choose(tables, preds, Options{Costs: testCosts})
	if got := res.Order(); !reflect.DeepEqual(got, []int{1, 0}) {
		t.Fatalf("order = %v, want leaf first", got)
	}
	if res.Levels[1].ProbePred != 0 {
		t.Fatalf("level 1 should probe dim.jc, got %+v", res.Levels[1])
	}
}
