// Package plan chooses join orders and access paths for the query
// engine's physical operator trees.
//
// The planner is deliberately decoupled from the executor: callers
// describe each FROM source as a Table (row count plus per-index
// distinct-key statistics) and each WHERE conjunct as a Pred (the
// sources it references, its selectivity class, and any index-probe
// candidates), and Choose returns an ordered pipeline of Access levels
// annotated with cost and cardinality estimates. The executor maps the
// levels back onto its own operators; this package never sees records,
// locks, or expressions.
//
// Two modes:
//
//   - Cost-based (the default): a greedy ordering that at each level
//     picks the unplaced source with the cheapest access path —
//     preferring index probes whose key expression is fully bound by
//     already-placed sources, and otherwise the smallest estimated
//     scan — pricing paths with the same per-primitive virtual costs
//     the executor charges (IndexProbe, ScanRow, JoinRow).
//
//   - Fixed-order: reproduces the seed interpreter's plan exactly
//     (FROM order, each predicate applied at the level of its highest
//     referenced source, first equality predicate per level wins the
//     probe slot). This is the baseline for the -exp join benchmark
//     and a debugging escape hatch.
package plan

// Table describes one FROM source to the planner.
type Table struct {
	Name string
	Rows int
	Temp bool
	// IndexKeys maps each indexed column to its distinct-key count
	// (nil or empty for temp tables, which have no indexes).
	IndexKeys map[string]int
}

// Probe is one index-probe candidate of an equality predicate: probe
// Src's index on Col using the value of the predicate's other side,
// which references OtherSrcs. Candidates are listed in the caller's
// preference order (left operand first, matching the seed).
type Probe struct {
	Src       int
	Col       string
	OtherSrcs []int
}

// Class is the selectivity class of a predicate.
type Class uint8

const (
	Eq Class = iota
	NotEq
	Range
)

// Pred describes one WHERE conjunct. An empty Srcs means the conjunct
// is constant; the planner reports it in Result.Consts and never
// assigns it to a level.
type Pred struct {
	Srcs   []int
	Class  Class
	Probes []Probe
}

// Access is one level of the chosen nested-loop pipeline.
type Access struct {
	Src       int // FROM index placed at this level
	ProbePred int // predicate consumed as an index probe, -1 for a scan
	ProbeCand int // index into that predicate's Probes, -1 for a scan
	Residuals []int
	// Estimates, cumulative across outer loops: EstLoops is how many
	// times this level opens, EstAccess the rows its scan/probe yields
	// in total, EstOut the rows surviving this level's residuals, and
	// EstCost the virtual cost this level adds.
	EstLoops  float64
	EstAccess float64
	EstOut    float64
	EstCost   float64
}

// Result is the chosen physical pipeline.
type Result struct {
	Levels     []Access
	Consts     []int // constant predicate indexes
	EstRows    float64
	EstCost    float64
	FixedOrder bool
}

// Costs are the per-primitive virtual costs used to price access paths;
// they mirror the query fields of cost.Model.
type Costs struct {
	IndexProbe float64
	ScanRow    float64
	JoinRow    float64
}

// Options configures Choose.
type Options struct {
	FixedOrder bool
	Costs      Costs
}

// Default selectivities when no index statistic applies.
const (
	selEq    = 0.1
	selNotEq = 0.9
	selRange = 1.0 / 3
)

// Choose orders the given sources and assigns each predicate either to
// an index-probe slot or to the residual list of the earliest level
// where all its sources are bound.
func Choose(tables []Table, preds []Pred, opt Options) Result {
	res := Result{FixedOrder: opt.FixedOrder}
	for i, p := range preds {
		if len(p.Srcs) == 0 {
			res.Consts = append(res.Consts, i)
		}
	}
	c := opt.Costs
	if c.IndexProbe == 0 && c.ScanRow == 0 && c.JoinRow == 0 {
		// A zero cost model (live engines run uncharged) would make
		// every path free; price with the paper's default ratios so
		// planning still discriminates.
		c = Costs{IndexProbe: 25, ScanRow: 5, JoinRow: 20}
	}
	if opt.FixedOrder {
		res.Levels = fixedOrder(tables, preds)
	} else {
		res.Levels = costOrder(tables, preds, c)
	}
	estimate(tables, preds, res.Levels, c)
	if n := len(res.Levels); n > 0 {
		res.EstRows = res.Levels[n-1].EstOut
		for _, lv := range res.Levels {
			res.EstCost += lv.EstCost
		}
	}
	return res
}

// fixedOrder reproduces the seed interpreter's plan: sources stay in
// FROM order, each predicate lands at the level of its highest source,
// and the first equality predicate per level whose probe candidate is
// indexed and bound below wins the probe slot.
func fixedOrder(tables []Table, preds []Pred) []Access {
	levels := make([]Access, len(tables))
	for i := range levels {
		levels[i] = Access{Src: i, ProbePred: -1, ProbeCand: -1}
	}
	for pi, p := range preds {
		lvl := maxSrc(p.Srcs)
		if lvl < 0 {
			continue
		}
		if p.Class == Eq && levels[lvl].ProbePred < 0 {
			if ci := probeCandAt(tables, p, lvl, lvl); ci >= 0 {
				levels[lvl].ProbePred = pi
				levels[lvl].ProbeCand = ci
				continue
			}
		}
		levels[lvl].Residuals = append(levels[lvl].Residuals, pi)
	}
	return levels
}

// probeCandAt returns the first candidate of p that probes src and
// whose other side references only sources strictly below bound.
func probeCandAt(tables []Table, p Pred, src, bound int) int {
	for ci, cand := range p.Probes {
		if cand.Src != src {
			continue
		}
		if maxSrc(cand.OtherSrcs) >= bound {
			continue
		}
		if _, ok := tables[src].IndexKeys[cand.Col]; !ok {
			continue
		}
		return ci
	}
	return -1
}

// costOrder greedily builds the pipeline with one level of lookahead: at
// each position it prices every unplaced source's best access path
// (probe if some unused equality predicate's key side is fully bound by
// the placed set, otherwise a scan) plus the cheapest access the
// remaining sources would have once this candidate is placed, and
// commits the cheapest total, breaking ties toward the smaller output
// estimate and then FROM order.
//
// The lookahead term is what makes delta plans cheap: a large transition
// table joined to a small indexed dimension must be scanned first (one
// pass, then index probes into the dimension). A purely immediate-cost
// greedy would place the smaller dimension first — its level-0 scan is
// cheaper — and then have no probe into the unindexed transition leaf,
// turning an O(|delta|) plan into O(|dim|·|delta|).
func costOrder(tables []Table, preds []Pred, c Costs) []Access {
	n := len(tables)
	placed := make([]bool, n)
	used := make([]bool, len(preds))
	levels := make([]Access, 0, n)
	loops := 1.0
	for pos := 0; pos < n; pos++ {
		joinRow := 0.0
		if pos > 0 {
			joinRow = c.JoinRow
		}
		best := -1
		var bestAcc Access
		var bestCost, bestOut float64
		for s := 0; s < n; s++ {
			if placed[s] {
				continue
			}
			acc := Access{Src: s, ProbePred: -1, ProbeCand: -1}
			var pi, ci int
			var cost, out float64
			pi, ci, cost, out = accessCost(tables, preds, used, placed, -1, s, loops, joinRow, c)
			acc.ProbePred, acc.ProbeCand = pi, ci
			for qi, q := range preds {
				if used[qi] || qi == acc.ProbePred || len(q.Srcs) == 0 {
					continue
				}
				if boundWith(q.Srcs, placed, s) {
					out *= selectivity(tables, q)
				}
			}
			// One-level lookahead: the cheapest next access given s is
			// placed, driven by s's output cardinality. The predicate s
			// probed on is consumed for the duration so the next level
			// can't claim it twice.
			if pos < n-1 {
				nextLoops := out
				if nextLoops < 1 {
					nextLoops = 1
				}
				if pi >= 0 {
					used[pi] = true
				}
				nextBest := -1.0
				for t := 0; t < n; t++ {
					if placed[t] || t == s {
						continue
					}
					_, _, tc, _ := accessCost(tables, preds, used, placed, s, t, nextLoops, c.JoinRow, c)
					if nextBest < 0 || tc < nextBest {
						nextBest = tc
					}
				}
				if pi >= 0 {
					used[pi] = false
				}
				if nextBest > 0 {
					cost += nextBest
				}
			}
			if best < 0 || cost < bestCost ||
				(cost == bestCost && (out < bestOut || (out == bestOut && s < best))) {
				best, bestAcc, bestCost, bestOut = s, acc, cost, out
			}
		}
		placed[best] = true
		if bestAcc.ProbePred >= 0 {
			used[bestAcc.ProbePred] = true
		}
		for qi, q := range preds {
			if used[qi] || len(q.Srcs) == 0 {
				continue
			}
			if allPlaced(q.Srcs, placed) {
				bestAcc.Residuals = append(bestAcc.Residuals, qi)
				used[qi] = true
			}
		}
		levels = append(levels, bestAcc)
		loops = bestOut
		if loops < 1 {
			loops = 1
		}
	}
	return levels
}

// accessCost prices source s's best access path given the placed set
// (optionally extended by extra ≥ 0): the probe/scan choice, its virtual
// cost over loops iterations, and the raw rows it yields. Returns the
// chosen probe predicate/candidate (-1 for a scan).
func accessCost(tables []Table, preds []Pred, used, placed []bool, extra, s int, loops, joinRow float64, c Costs) (pi, ci int, cost, out float64) {
	rows := float64(tables[s].Rows)
	pi, ci, keys := bestProbeWith(tables, preds, used, placed, extra, s)
	if pi >= 0 {
		matches := rows / float64(keys)
		return pi, ci, loops * (c.IndexProbe + matches*joinRow), loops * matches
	}
	return -1, -1, loops * rows * (c.ScanRow + joinRow), loops * rows
}

// bestProbe finds the most selective usable probe into s: an unused
// equality predicate with an indexed candidate on s whose other side is
// fully bound by the placed set. Returns the candidate with the most
// distinct keys (fewest expected matches).
func bestProbe(tables []Table, preds []Pred, used, placed []bool, s int) (pred, cand, keys int) {
	return bestProbeWith(tables, preds, used, placed, -1, s)
}

// bestProbeWith is bestProbe with the placed set extended by source extra
// (pass extra < 0 for the plain placed set); costOrder's lookahead uses it
// to price the next level as if the current candidate were committed.
func bestProbeWith(tables []Table, preds []Pred, used, placed []bool, extra, s int) (pred, cand, keys int) {
	pred, cand, keys = -1, -1, 0
	for pi, p := range preds {
		if used[pi] || p.Class != Eq {
			continue
		}
		for ci, c := range p.Probes {
			if c.Src != s || !boundWith(c.OtherSrcs, placed, extra) {
				continue
			}
			k, ok := tables[s].IndexKeys[c.Col]
			if !ok {
				continue
			}
			if k < 1 {
				k = 1
			}
			if k > keys {
				pred, cand, keys = pi, ci, k
			}
		}
	}
	return pred, cand, keys
}

// selectivity estimates the fraction of rows a predicate retains,
// using distinct-key statistics for equalities on indexed columns.
func selectivity(tables []Table, p Pred) float64 {
	switch p.Class {
	case Eq:
		sel := selEq
		for _, c := range p.Probes {
			if k, ok := tables[c.Src].IndexKeys[c.Col]; ok && k > 0 {
				if s := 1 / float64(k); s < sel {
					sel = s
				}
			}
		}
		return sel
	case NotEq:
		return selNotEq
	default:
		return selRange
	}
}

// estimate annotates each chosen level with cumulative loop, row, and
// cost estimates so EXPLAIN can show them and Choose can total them.
func estimate(tables []Table, preds []Pred, levels []Access, c Costs) {
	loops := 1.0
	for i := range levels {
		lv := &levels[i]
		joinRow := 0.0
		if i > 0 {
			joinRow = c.JoinRow
		}
		rows := float64(tables[lv.Src].Rows)
		lv.EstLoops = loops
		if lv.ProbePred >= 0 {
			cand := preds[lv.ProbePred].Probes[lv.ProbeCand]
			keys := tables[lv.Src].IndexKeys[cand.Col]
			if keys < 1 {
				keys = 1
			}
			matches := rows / float64(keys)
			lv.EstAccess = loops * matches
			lv.EstCost = loops * (c.IndexProbe + matches*joinRow)
		} else {
			lv.EstAccess = loops * rows
			lv.EstCost = loops * rows * (c.ScanRow + joinRow)
		}
		lv.EstOut = lv.EstAccess
		for _, qi := range lv.Residuals {
			lv.EstOut *= selectivity(tables, preds[qi])
		}
		loops = lv.EstOut
		if loops < 1 {
			loops = 1
		}
	}
}

// Order returns the FROM indexes in execution order.
func (r Result) Order() []int {
	out := make([]int, len(r.Levels))
	for i, lv := range r.Levels {
		out[i] = lv.Src
	}
	return out
}

// Covered reports whether every predicate index in [0, n) is assigned
// exactly once across probes, residuals, and constants — a structural
// invariant the tests assert.
func Covered(r Result, n int) bool {
	seen := make([]int, n)
	for _, pi := range r.Consts {
		seen[pi]++
	}
	for _, lv := range r.Levels {
		if lv.ProbePred >= 0 {
			seen[lv.ProbePred]++
		}
		for _, pi := range lv.Residuals {
			seen[pi]++
		}
	}
	for _, c := range seen {
		if c != 1 {
			return false
		}
	}
	return true
}

func maxSrc(srcs []int) int {
	m := -1
	for _, s := range srcs {
		if s > m {
			m = s
		}
	}
	return m
}

func allPlaced(srcs []int, placed []bool) bool {
	for _, s := range srcs {
		if !placed[s] {
			return false
		}
	}
	return true
}

// boundWith reports whether srcs ⊆ placed ∪ {extra}.
func boundWith(srcs []int, placed []bool, extra int) bool {
	for _, s := range srcs {
		if s != extra && !placed[s] {
			return false
		}
	}
	return true
}

