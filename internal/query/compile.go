package query

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"github.com/stripdb/strip/internal/catalog"
	"github.com/stripdb/strip/internal/obs"
	"github.com/stripdb/strip/internal/query/plan"
	"github.com/stripdb/strip/internal/storage"
	"github.com/stripdb/strip/internal/txn"
	"github.com/stripdb/strip/internal/types"
)

// compiled is a planned, resolved, immutable form of a Select. One
// compiled plan is shared by every run whose source signature matches
// (see sigMatch); runs keep all mutable state in their own exec, so a
// plan can execute concurrently from many transactions.
type compiled struct {
	q      *Select // private resolved clone (star expanded)
	agg    bool
	fixed  bool        // planner mode the plan was built under
	levels []levelPlan // execution order
	consts []Pred
	// estRows/estCost are the planner's whole-query estimates.
	estRows float64
	estCost float64
	sig     []srcSig

	// Selectivity feedback. Every run reports its actual matched-row
	// count through noteActual; when the act/est ratio drifts past
	// driftThreshold for driftLimit consecutive runs the plan marks
	// itself stale, and the next ensureCompiled re-plans from fresh
	// statistics (query.plan_feedback_rebuilds). driftLimit is larger on
	// plans that were themselves feedback rebuilds, bounding thrash when
	// the data is simply skewed beyond what the stats can express.
	drift      atomic.Int32
	stale      atomic.Bool
	driftLimit int32
}

// Feedback tuning: a plan is considered drifted when actual rows differ
// from the estimate by more than driftThreshold× in either direction
// (ignoring runs where both are below driftFloor rows, which a single
// probe could flip), and goes stale after driftLimit consecutive
// drifted runs.
const (
	driftThreshold       = 4.0
	driftFloor           = 8
	defaultDriftLimit    = 3
	rebuiltPlanDriftBias = 8 // rebuilt plans tolerate 8× more drift runs
)

// noteActual folds one run's actual matched-row count into the plan's
// drift state.
func (c *compiled) noteActual(act int64) {
	if c.stale.Load() {
		return
	}
	est := c.estRows
	if act < driftFloor && est < driftFloor {
		c.drift.Store(0)
		return
	}
	a, e := float64(act), est
	if a < 1 {
		a = 1
	}
	if e < 1 {
		e = 1
	}
	if r := a / e; r < driftThreshold && r > 1/driftThreshold {
		c.drift.Store(0)
		return
	}
	if c.drift.Add(1) >= c.driftLimit {
		c.stale.Store(true)
	}
}

// levelPlan is one level of the physical pipeline: which FROM source it
// accesses, how (index probe or scan), and which residual predicates
// filter it, annotated with the planner's estimates.
type levelPlan struct {
	src       int
	probe     *probe // nil = scan
	resid     []Pred
	estLoops  float64
	estAccess float64
	estOut    float64
	estCost   float64
}

// probe is an index nested-loop join step: look up the source's index
// on col with the value of expr (bound by outer levels).
type probe struct {
	col  string
	expr Expr
}

// srcSig captures what a cached plan assumed about one source. Standard
// tables must be the same table object with the same index count and
// row-count magnitude (log2 bucket — a table growing 10x deserves a new
// join order); temp tables must be shape-equal and similarly sized.
type srcSig struct {
	tbl     *storage.Table
	schema  *catalog.Schema
	logRows int
	nIdx    int
}

func makeSig(srcs []*source) []srcSig {
	sig := make([]srcSig, len(srcs))
	for i, s := range srcs {
		g := srcSig{tbl: s.tbl, schema: s.schema}
		if s.tbl != nil {
			rows, nIdx := s.tbl.PlanStats()
			g.logRows, g.nIdx = bits.Len(uint(rows)), nIdx
		} else {
			g.logRows = bits.Len(uint(s.tmp.Len()))
		}
		sig[i] = g
	}
	return sig
}

func sigMatch(sig []srcSig, srcs []*source) bool {
	if len(sig) != len(srcs) {
		return false
	}
	for i, s := range srcs {
		g := sig[i]
		if s.tbl != nil {
			if g.tbl != s.tbl {
				return false
			}
			rows, nIdx := s.tbl.PlanStats()
			if g.nIdx != nIdx || g.logRows != bits.Len(uint(rows)) {
				return false
			}
		} else {
			if g.tbl != nil {
				return false
			}
			if !g.schema.Equal(s.tmp.Schema()) {
				return false
			}
			if g.logRows != bits.Len(uint(s.tmp.Len())) {
				return false
			}
		}
	}
	return true
}

// ensureCompiled returns a plan for the query against the given
// resolved sources, reusing the cached one when its signature still
// holds and the planner mode is unchanged. Build errors are never
// cached; a later run with fixed inputs retries from scratch.
func (q *Select) ensureCompiled(tx *txn.Txn, srcs []*source) (*compiled, error) {
	mgr := tx.Manager()
	fixed := mgr.PlanFixedOrder
	feedback := false
	if c := q.cache.Load(); c != nil && c.fixed == fixed && sigMatch(c.sig, srcs) {
		if !c.stale.Load() {
			mgr.Obs.Counter(obs.MQueryPlanHits).Inc()
			return c, nil
		}
		// The signature still holds but selectivity feedback marked the
		// plan stale: re-plan, and give the replacement a longer drift
		// leash so persistent skew doesn't rebuild every few runs.
		feedback = true
	}
	c, err := compile(q, tx, srcs, fixed)
	if err != nil {
		return nil, err
	}
	c.driftLimit = defaultDriftLimit
	if feedback {
		c.driftLimit = defaultDriftLimit * rebuiltPlanDriftBias
		mgr.Obs.Counter(obs.MQueryPlanFeedbackRebuilds).Inc()
	}
	q.cache.Store(c)
	mgr.Obs.Counter(obs.MQueryPlanBuilds).Inc()
	return c, nil
}

// lowerQuery produces a private resolved clone of the query against the
// given sources: expand *, resolve every expression, validate grouping.
// Returns the clone and whether it aggregates.
func lowerQuery(orig *Select, srcs []*source) (*Select, bool, error) {
	q := orig.clone()
	if q.Star {
		if len(q.Items) > 0 {
			return nil, false, fmt.Errorf("query: * cannot mix with explicit items")
		}
		for _, s := range srcs {
			for i := 0; i < s.schema.NumCols(); i++ {
				q.Items = append(q.Items, Item(QCol(s.name, s.schema.Col(i).Name), ""))
			}
		}
	}
	for i := range q.Items {
		if q.Items[i].Expr == nil {
			return nil, false, fmt.Errorf("query: select item %d has no expression", i)
		}
		if err := q.Items[i].Expr.resolve(srcs); err != nil {
			return nil, false, err
		}
	}
	for i := range q.Where {
		if err := q.Where[i].resolve(srcs); err != nil {
			return nil, false, err
		}
	}
	for _, g := range q.GroupBy {
		if err := g.resolve(srcs); err != nil {
			return nil, false, err
		}
	}
	agg, err := validateAggregates(q)
	if err != nil {
		return nil, false, err
	}
	return q, agg, nil
}

// compile lowers the query onto the resolved sources, hands the shape to
// the planner, and maps its chosen levels back onto executable probes
// and residual filters.
func compile(orig *Select, tx *txn.Txn, srcs []*source, fixed bool) (*compiled, error) {
	q, agg, err := lowerQuery(orig, srcs)
	if err != nil {
		return nil, err
	}

	tables, preds, probeSides := planInputs(q, srcs)
	model := tx.Model()
	res := plan.Choose(tables, preds, plan.Options{
		FixedOrder: fixed,
		Costs: plan.Costs{
			IndexProbe: model.IndexProbe,
			ScanRow:    model.ScanRow,
			JoinRow:    model.JoinRow,
		},
	})

	c := &compiled{
		q:       q,
		agg:     agg,
		fixed:   fixed,
		estRows: res.EstRows,
		estCost: res.EstCost,
		sig:     makeSig(srcs),
	}
	for _, pi := range res.Consts {
		c.consts = append(c.consts, q.Where[pi])
	}
	c.levels = make([]levelPlan, len(res.Levels))
	for i, lv := range res.Levels {
		lp := levelPlan{
			src:       lv.Src,
			estLoops:  lv.EstLoops,
			estAccess: lv.EstAccess,
			estOut:    lv.EstOut,
			estCost:   lv.EstCost,
		}
		if lv.ProbePred >= 0 {
			side := probeSides[lv.ProbePred][lv.ProbeCand]
			lp.probe = &probe{col: side.col, expr: side.expr}
		}
		for _, pi := range lv.Residuals {
			lp.resid = append(lp.resid, q.Where[pi])
		}
		c.levels[i] = lp
	}
	return c, nil
}

// probeSide pairs a plan.Probe candidate with the executable key
// expression (the predicate's other operand).
type probeSide struct {
	col  string
	expr Expr
}

// planInputs describes the resolved query to the planner: per-source
// statistics and per-predicate source sets, selectivity classes, and
// index-probe candidates (bare column = expression, candidate order
// left-then-right to match the seed interpreter).
func planInputs(q *Select, srcs []*source) ([]plan.Table, []plan.Pred, [][]probeSide) {
	tables := make([]plan.Table, len(srcs))
	for i, s := range srcs {
		t := plan.Table{Name: s.name}
		if s.tbl != nil {
			t.Rows, _ = s.tbl.PlanStats()
			t.IndexKeys = s.tbl.IndexStats()
		} else {
			t.Temp = true
			t.Rows = s.tmp.Len()
		}
		tables[i] = t
	}
	preds := make([]plan.Pred, len(q.Where))
	sides := make([][]probeSide, len(q.Where))
	for i, p := range q.Where {
		pp := plan.Pred{Srcs: predSrcs(p), Class: classOf(p.Op)}
		if p.Op == EQ {
			addCand := func(side, other Expr) {
				cr, ok := side.(*ColRef)
				if !ok || srcs[cr.src].tbl == nil {
					return
				}
				pp.Probes = append(pp.Probes, plan.Probe{
					Src: cr.src, Col: cr.Col, OtherSrcs: exprSrcs(other),
				})
				sides[i] = append(sides[i], probeSide{col: cr.Col, expr: other})
			}
			addCand(p.Left, p.Right)
			addCand(p.Right, p.Left)
		}
		preds[i] = pp
	}
	return tables, preds, sides
}

func classOf(op CmpOp) plan.Class {
	switch op {
	case EQ:
		return plan.Eq
	case NE:
		return plan.NotEq
	default:
		return plan.Range
	}
}

// predSrcs lists the distinct sources a predicate references.
func predSrcs(p Pred) []int {
	seen := map[int]bool{}
	var out []int
	for _, e := range []Expr{p.Left, p.Right} {
		e.walk(func(x Expr) {
			if c, ok := x.(*ColRef); ok && !seen[c.src] {
				seen[c.src] = true
				out = append(out, c.src)
			}
		})
	}
	return out
}

// exprSrcs lists the distinct sources an expression references.
func exprSrcs(e Expr) []int {
	seen := map[int]bool{}
	var out []int
	e.walk(func(x Expr) {
		if c, ok := x.(*ColRef); ok && !seen[c.src] {
			seen[c.src] = true
			out = append(out, c.src)
		}
	})
	return out
}

// validateAggregates checks grouping rules on a resolved query and
// reports whether the query aggregates.
func validateAggregates(q *Select) (bool, error) {
	agg := false
	for _, it := range q.Items {
		if it.Agg != AggNone {
			agg = true
		}
	}
	if len(q.GroupBy) > 0 && !agg {
		return false, fmt.Errorf("query: GROUP BY without aggregates")
	}
	if len(q.GroupBy) > types.MaxKeyWidth {
		return false, fmt.Errorf("query: GROUP BY width %d exceeds %d", len(q.GroupBy), types.MaxKeyWidth)
	}
	if agg {
		// Every non-aggregate item must be one of the group-by columns.
		for _, it := range q.Items {
			if it.Agg != AggNone {
				continue
			}
			cr, ok := it.Expr.(*ColRef)
			if !ok {
				return false, fmt.Errorf("query: non-aggregate item %s must be a grouped column", it.Expr)
			}
			found := false
			for _, g := range q.GroupBy {
				if g.src == cr.src && g.col == cr.col {
					found = true
					break
				}
			}
			if !found {
				return false, fmt.Errorf("query: column %s is not in GROUP BY", cr)
			}
		}
	}
	return agg, nil
}
