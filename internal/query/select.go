package query

import (
	"fmt"

	"github.com/stripdb/strip/internal/catalog"
	"github.com/stripdb/strip/internal/obs"
	"github.com/stripdb/strip/internal/storage"
	"github.com/stripdb/strip/internal/txn"
	"github.com/stripdb/strip/internal/types"
)

// Resolver maps a table name to a standard or temporary table. Rule action
// tasks resolve bound tables first and fall back to the database catalog
// (paper §6.3); plain transactions use TxnResolver.
type Resolver interface {
	Resolve(tx *txn.Txn, name string) (*storage.Table, *storage.TempTable, error)
}

// TxnResolver resolves names against the database only, acquiring
// intention-shared table locks through the transaction; the executor then
// locks the individual rows it reads (or escalates a scan to table S).
type TxnResolver struct{}

// Resolve implements Resolver.
func (TxnResolver) Resolve(tx *txn.Txn, name string) (*storage.Table, *storage.TempTable, error) {
	tbl, err := tx.ReadTable(name)
	if err != nil {
		return nil, nil, err
	}
	return tbl, nil, nil
}

// source is one FROM entry after resolution: exactly one of tbl/tmp is set.
type source struct {
	name   string
	schema *catalog.Schema
	tbl    *storage.Table
	tmp    *storage.TempTable
}

// cursor is a source's current position during join iteration.
type cursor struct {
	src *source
	rec *storage.Record // standard-table position
	row int             // temp-table position
}

func (c cursor) value(col int) types.Value {
	if c.src.tbl != nil {
		return c.rec.Value(col)
	}
	return c.src.tmp.Value(c.row, col)
}

// AggKind selects an aggregate function for a select item.
type AggKind uint8

// Aggregates.
const (
	AggNone AggKind = iota
	AggSum
	AggCount
	AggAvg
	AggMin
	AggMax
)

// String names the aggregate.
func (a AggKind) String() string {
	switch a {
	case AggNone:
		return ""
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return "?"
	}
}

// SelectItem is one output column of a Select.
type SelectItem struct {
	Expr Expr
	Agg  AggKind
	As   string // output column name; defaults to the column name for refs
}

// Item builds a plain select item.
func Item(e Expr, as string) SelectItem { return SelectItem{Expr: e, As: as} }

// AggItem builds an aggregate select item.
func AggItem(agg AggKind, e Expr, as string) SelectItem {
	return SelectItem{Expr: e, Agg: agg, As: as}
}

// Select is a select-project-join query with optional grouping.
type Select struct {
	Items   []SelectItem
	From    []string
	Where   []Pred
	GroupBy []*ColRef
	// Star selects every column of every FROM table in order (`select *`);
	// Items must be empty.
	Star bool
	// OrderBy sorts the result by output columns (by name); Desc flips the
	// whole ordering.
	OrderBy []string
	Desc    bool
	// Bind names the result temp table (the `bind as` clause); defaults to
	// "result".
	Bind string
}

// Run executes the query inside tx, resolving table names through res, and
// returns the result as a temporary table. Results use the §6.1 pointer
// layout for every column that traces back to a standard-table record;
// computed and aggregate columns are materialized.
func (q *Select) Run(tx *txn.Txn, res Resolver) (*storage.TempTable, error) {
	mgr := tx.Manager()
	start := mgr.Clock.Now()
	out, err := q.run(tx, res)
	mgr.Obs.Counter(obs.MQuerySelects).Inc()
	mgr.Obs.Histogram(obs.MQuerySelectMicros).Record(mgr.Clock.Now() - start)
	return out, err
}

func (q *Select) run(tx *txn.Txn, res Resolver) (*storage.TempTable, error) {
	model := tx.Model()
	tx.Charge(model.StmtSetup)
	// Run on a private copy: resolution writes into expressions, and rules
	// re-run their condition queries on every firing (possibly concurrently
	// in live mode).
	q = q.clone()
	ex := &exec{q: q, tx: tx, prof: tx.Profile()}

	// Resolve sources.
	for _, name := range q.From {
		tbl, tmp, err := res.Resolve(tx, name)
		if err != nil {
			return nil, err
		}
		s := &source{name: name, tbl: tbl, tmp: tmp}
		if tbl != nil {
			s.schema = tbl.Schema()
		} else {
			s.schema = tmp.Schema()
		}
		ex.srcs = append(ex.srcs, s)
		tx.Charge(model.OpenCursor)
	}
	if len(ex.srcs) == 0 {
		return nil, fmt.Errorf("query: select with empty FROM")
	}

	// Expand `select *`.
	if q.Star {
		if len(q.Items) > 0 {
			return nil, fmt.Errorf("query: * cannot mix with explicit items")
		}
		for _, s := range ex.srcs {
			for i := 0; i < s.schema.NumCols(); i++ {
				ex.q.Items = append(ex.q.Items, Item(QCol(s.name, s.schema.Col(i).Name), ""))
			}
		}
	}

	// Resolve expressions.
	for i := range q.Items {
		if q.Items[i].Expr == nil {
			return nil, fmt.Errorf("query: select item %d has no expression", i)
		}
		if err := q.Items[i].Expr.resolve(ex.srcs); err != nil {
			return nil, err
		}
	}
	for i := range q.Where {
		if err := q.Where[i].resolve(ex.srcs); err != nil {
			return nil, err
		}
	}
	for _, g := range q.GroupBy {
		if err := g.resolve(ex.srcs); err != nil {
			return nil, err
		}
	}
	if err := ex.validateAggregates(); err != nil {
		return nil, err
	}

	// Classify predicates into index probes and residual filters per level.
	if err := ex.plan(); err != nil {
		return nil, err
	}

	// Prepare output.
	if err := ex.prepareOutput(); err != nil {
		return nil, err
	}

	// Evaluate constant predicates once.
	for _, p := range ex.constPreds {
		ok, err := p.eval(nil)
		if err != nil {
			return nil, err
		}
		if !ok {
			return ex.finish() // provably empty
		}
	}

	cur := make([]cursor, len(ex.srcs))
	if err := ex.join(0, cur); err != nil {
		return nil, err
	}
	out, err := ex.finish()
	if err != nil {
		return nil, err
	}
	if len(q.OrderBy) > 0 {
		if err := sortResult(out, q.OrderBy, q.Desc); err != nil {
			out.Retire()
			return nil, err
		}
	}
	return out, nil
}

// clone deep-copies the query for a private run.
func (q *Select) clone() *Select {
	cp := &Select{
		Items:   make([]SelectItem, len(q.Items)),
		From:    append([]string(nil), q.From...),
		Where:   make([]Pred, len(q.Where)),
		GroupBy: make([]*ColRef, len(q.GroupBy)),
		Star:    q.Star,
		OrderBy: append([]string(nil), q.OrderBy...),
		Desc:    q.Desc,
		Bind:    q.Bind,
	}
	for i, it := range q.Items {
		cp.Items[i] = SelectItem{Agg: it.Agg, As: it.As}
		if it.Expr != nil {
			cp.Items[i].Expr = it.Expr.clone()
		}
	}
	for i, p := range q.Where {
		cp.Where[i] = p.clone()
	}
	for i, g := range q.GroupBy {
		cp.GroupBy[i] = g.cloneRef()
	}
	return cp
}

// exec carries the per-run state of a Select.
type exec struct {
	q    *Select
	tx   *txn.Txn
	srcs []*source
	// prof receives row accounting (rows visited/matched) when the
	// transaction carries a cost profile; nil otherwise.
	prof *txn.TxnProfile

	probes     []*probe // per level, nil if scanning
	residuals  [][]Pred // per level
	constPreds []Pred

	// Output construction.
	out      *storage.TempTable
	ptrSlots []ptrSlot // pointer slots of the output layout
	matCols  []int     // item indexes of materialized columns

	// Grouping state.
	groups    map[types.Key]*groupState
	groupSeq  []types.Key
	aggregate bool
}

// probe is an index nested-loop join step: at this level, look up the
// source's index on column col with the value of expr (bound by lower
// levels).
type probe struct {
	col  string
	expr Expr
}

// ptrSlot identifies one pointer of the output layout: records flow either
// directly from a standard source (tmpPtr == -1) or through a temp source's
// own pointer tmpPtr.
type ptrSlot struct {
	src    int
	tmpPtr int
}

func (ex *exec) validateAggregates() error {
	for _, it := range ex.q.Items {
		if it.Agg != AggNone {
			ex.aggregate = true
		}
	}
	if len(ex.q.GroupBy) > 0 && !ex.aggregate {
		return fmt.Errorf("query: GROUP BY without aggregates")
	}
	if len(ex.q.GroupBy) > types.MaxKeyWidth {
		return fmt.Errorf("query: GROUP BY width %d exceeds %d", len(ex.q.GroupBy), types.MaxKeyWidth)
	}
	if ex.aggregate {
		// Every non-aggregate item must be one of the group-by columns.
		for _, it := range ex.q.Items {
			if it.Agg != AggNone {
				continue
			}
			cr, ok := it.Expr.(*ColRef)
			if !ok {
				return fmt.Errorf("query: non-aggregate item %s must be a grouped column", it.Expr)
			}
			found := false
			for _, g := range ex.q.GroupBy {
				if g.src == cr.src && g.col == cr.col {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("query: column %s is not in GROUP BY", cr)
			}
		}
		ex.groups = make(map[types.Key]*groupState)
	}
	return nil
}

// plan classifies WHERE predicates: for each join level the first usable
// equality against an indexed column becomes an index probe; everything
// else filters at the highest level it references.
func (ex *exec) plan() error {
	n := len(ex.srcs)
	ex.probes = make([]*probe, n)
	ex.residuals = make([][]Pred, n)
	for _, p := range ex.q.Where {
		lvl := p.maxSource()
		if lvl < 0 {
			ex.constPreds = append(ex.constPreds, p)
			continue
		}
		if pr, ok := ex.probeFor(p, lvl); ok && ex.probes[lvl] == nil {
			ex.probes[lvl] = pr
			continue
		}
		ex.residuals[lvl] = append(ex.residuals[lvl], p)
	}
	return nil
}

// probeFor returns an index probe if p is `srcs[lvl].indexedCol = expr`
// (either side) with expr bound below lvl.
func (ex *exec) probeFor(p Pred, lvl int) (*probe, bool) {
	if p.Op != EQ {
		return nil, false
	}
	try := func(side, other Expr) (*probe, bool) {
		cr, ok := side.(*ColRef)
		if !ok || cr.src != lvl {
			return nil, false
		}
		if otherMax(other) >= lvl {
			return nil, false
		}
		s := ex.srcs[lvl]
		if s.tbl == nil || !s.tbl.HasIndex(cr.Col) {
			return nil, false
		}
		return &probe{col: cr.Col, expr: other}, true
	}
	if pr, ok := try(p.Left, p.Right); ok {
		return pr, true
	}
	return try(p.Right, p.Left)
}

func otherMax(e Expr) int {
	max := -1
	e.walk(func(x Expr) {
		if c, ok := x.(*ColRef); ok && c.src > max {
			max = c.src
		}
	})
	return max
}

// join recursively iterates source `level`, applying probes and residuals.
func (ex *exec) join(level int, cur []cursor) error {
	if level == len(ex.srcs) {
		return ex.emit(cur)
	}
	model := ex.tx.Model()
	s := ex.srcs[level]
	visit := func(c cursor) error {
		cur[level] = c
		if ex.prof != nil {
			ex.prof.RowsScanned++
		}
		if level > 0 {
			ex.tx.Charge(model.JoinRow)
		}
		for _, p := range ex.residuals[level] {
			ok, err := p.eval(cur)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		return ex.join(level+1, cur)
	}

	if pr := ex.probes[level]; pr != nil {
		v, err := pr.expr.eval(cur)
		if err != nil {
			return err
		}
		ex.tx.Charge(model.IndexProbe)
		recs, err := ex.lookupRecords(s, pr.col, v)
		if err != nil {
			return err
		}
		for _, r := range recs {
			if err := visit(cursor{src: s, rec: r}); err != nil {
				return err
			}
		}
		return nil
	}

	if s.tbl != nil {
		if snap, me, ok := ex.tx.SnapshotRead(); ok {
			// Lock-free snapshot scan: walk version chains at the
			// transaction's begin snapshot instead of locking the table
			// shared — concurrent writers proceed untouched. The visible
			// set is materialized under the table latch and visited only
			// after it is released: visit() recurses into the next join
			// level, whose scan latches another table (or this one again),
			// and with no table S locks serializing writers anymore, a
			// latch held across that recursion can deadlock against a
			// queued writer (RWMutex is writer-preferring).
			ex.tx.Manager().Obs.Counter(obs.MMvccSnapshotScans).Inc()
			var recs []*storage.Record
			s.tbl.ScanSnapshot(snap, me, func(r *storage.Record) bool {
				recs = append(recs, r)
				return true
			})
			for _, r := range recs {
				ex.tx.Charge(model.ScanRow)
				if err := visit(cursor{src: s, rec: r}); err != nil {
					return err
				}
			}
			return nil
		}
		// A full scan locks the whole table shared rather than every row
		// (read-side escalation); this also shuts out record writers whose
		// IX would otherwise let rows change mid-scan.
		if _, err := ex.tx.ScanTable(s.name); err != nil {
			return err
		}
		var visitErr error
		s.tbl.Scan(func(r *storage.Record) bool {
			ex.tx.Charge(model.ScanRow)
			if err := visit(cursor{src: s, rec: r}); err != nil {
				visitErr = err
				return false
			}
			return true
		})
		return visitErr
	}
	for i := 0; i < s.tmp.Len(); i++ {
		ex.tx.Charge(model.ScanRow)
		if err := visit(cursor{src: s, row: i}); err != nil {
			return err
		}
	}
	return nil
}

// lookupRecords resolves an index probe: lock-free against the
// transaction's snapshot when snapshot reads are enabled, otherwise through
// lockedLookup's record S locks.
func (ex *exec) lookupRecords(s *source, col string, v types.Value) ([]*storage.Record, error) {
	snap, me, ok := ex.tx.SnapshotRead()
	if !ok {
		return ex.lockedLookup(s, col, v)
	}
	ex.tx.Manager().Obs.Counter(obs.MMvccSnapshotProbes).Inc()
	if recs, exact := s.tbl.LookupSnapshot(col, v, snap, me); exact {
		return recs, nil
	}
	// An update changed an indexed column's value on this table, so the
	// index (which covers head versions only) could miss older versions
	// that match. Fall back to a filtered snapshot scan.
	ci := s.tbl.Schema().ColIndex(col)
	var recs []*storage.Record
	s.tbl.ScanSnapshot(snap, me, func(r *storage.Record) bool {
		if r.Value(ci).Equal(v) {
			recs = append(recs, r)
		}
		return true
	})
	return recs, nil
}

// lockedLookup probes the index and S-locks exactly the rows it returns.
// Acquiring the record lock can block behind a writer that replaces or
// deletes the row before committing (copy-on-update replacements keep the
// lock ID); when the granted record turns out stale the probe re-runs — the
// lock already held covers the replacement, so a bounded number of retries
// settles unless the index entry churns pathologically, in which case the
// probe escalates to a whole-table S as the always-correct fallback.
func (ex *exec) lockedLookup(s *source, col string, v types.Value) ([]*storage.Record, error) {
	const maxAttempts = 3
	for attempt := 0; attempt < maxAttempts; attempt++ {
		recs, _ := s.tbl.IndexLookup(col, v)
		out := recs[:0]
		stale := false
		for _, r := range recs {
			if err := ex.tx.LockRecordShared(s.name, r.ID()); err != nil {
				return nil, err
			}
			if !r.Live() {
				stale = true
				break
			}
			out = append(out, r)
		}
		if !stale {
			return out, nil
		}
	}
	if _, err := ex.tx.ScanTable(s.name); err != nil {
		return nil, err
	}
	recs, _ := s.tbl.IndexLookup(col, v)
	return recs, nil
}

// prepareOutput builds the result temp table: schema, pointer slots, and
// static map.
func (ex *exec) prepareOutput() error {
	name := ex.q.Bind
	if name == "" {
		name = "result"
	}
	cols := make([]catalog.Column, len(ex.q.Items))
	for i, it := range ex.q.Items {
		colName := it.As
		if colName == "" {
			if cr, ok := it.Expr.(*ColRef); ok && it.Agg == AggNone {
				colName = cr.Col
			} else {
				return fmt.Errorf("query: select item %d (%s) needs an alias", i, it.Expr)
			}
		}
		cols[i] = catalog.Column{Name: colName, Kind: ex.itemKind(it)}
	}
	schema, err := catalog.NewSchema(name, cols)
	if err != nil {
		return err
	}

	if ex.aggregate {
		ex.out = storage.NewValueTempTable(schema)
		return nil
	}

	// Pointer layout: share one slot per distinct record origin (paper §6.1:
	// one pointer per standard tuple contributing at least one attribute).
	slotOf := map[ptrSlot]int{}
	srcMap := make([]storage.ColSource, len(ex.q.Items))
	nMat := 0
	for i, it := range ex.q.Items {
		cr, isRef := it.Expr.(*ColRef)
		if !isRef {
			srcMap[i] = storage.Materialized(nMat)
			ex.matCols = append(ex.matCols, i)
			nMat++
			continue
		}
		s := ex.srcs[cr.src]
		var slot ptrSlot
		off := cr.col
		if s.tbl != nil {
			slot = ptrSlot{src: cr.src, tmpPtr: -1}
		} else {
			cs := s.tmp.Source(cr.col)
			if cs.Ptr < 0 {
				// Materialized in the source temp table; copy the value.
				srcMap[i] = storage.Materialized(nMat)
				ex.matCols = append(ex.matCols, i)
				nMat++
				continue
			}
			slot = ptrSlot{src: cr.src, tmpPtr: cs.Ptr}
			off = cs.Off
		}
		idx, ok := slotOf[slot]
		if !ok {
			idx = len(ex.ptrSlots)
			slotOf[slot] = idx
			ex.ptrSlots = append(ex.ptrSlots, slot)
		}
		srcMap[i] = storage.FromRecord(idx, off)
	}
	ex.out, err = storage.NewTempTable(schema, srcMap, len(ex.ptrSlots))
	return err
}

func (ex *exec) itemKind(it SelectItem) types.Kind {
	switch it.Agg {
	case AggCount:
		return types.KindInt
	case AggAvg:
		return types.KindFloat
	}
	return exprKind(it.Expr, ex.srcs)
}

func exprKind(e Expr, srcs []*source) types.Kind {
	switch x := e.(type) {
	case *ColRef:
		return srcs[x.src].schema.Col(x.col).Kind
	case *ConstExpr:
		return x.Val.Kind()
	case *BinExpr:
		if exprKind(x.Left, srcs) == types.KindInt && exprKind(x.Right, srcs) == types.KindInt {
			return types.KindInt
		}
		return types.KindFloat
	case *FuncExpr:
		return types.KindFloat
	default:
		return types.KindNull
	}
}

// groupState accumulates aggregates for one group.
type groupState struct {
	reps   []types.Value // group-by column values in Items order (nil holes)
	counts []int64
	sums   []float64
	mins   []types.Value
	maxs   []types.Value
}

func (ex *exec) emit(cur []cursor) error {
	model := ex.tx.Model()
	if ex.prof != nil {
		ex.prof.RowsMatched++
	}
	if !ex.aggregate {
		ex.tx.Charge(model.OutputRow)
		ptrs := make([]*storage.Record, len(ex.ptrSlots))
		for i, slot := range ex.ptrSlots {
			c := cur[slot.src]
			if slot.tmpPtr < 0 {
				ptrs[i] = c.rec
			} else {
				ptrs[i] = c.src.tmp.RowPtr(c.row, slot.tmpPtr)
			}
		}
		var vals []types.Value
		for _, itemIdx := range ex.matCols {
			v, err := ex.q.Items[itemIdx].Expr.eval(cur)
			if err != nil {
				return err
			}
			vals = append(vals, v)
		}
		return ex.out.AppendRow(ptrs, vals)
	}

	ex.tx.Charge(model.GroupRow)
	keyVals := make([]types.Value, len(ex.q.GroupBy))
	for i, g := range ex.q.GroupBy {
		v, err := g.eval(cur)
		if err != nil {
			return err
		}
		keyVals[i] = v
	}
	key := types.MakeKey(keyVals...)
	gs, ok := ex.groups[key]
	if !ok {
		gs = &groupState{
			reps:   make([]types.Value, len(ex.q.Items)),
			counts: make([]int64, len(ex.q.Items)),
			sums:   make([]float64, len(ex.q.Items)),
			mins:   make([]types.Value, len(ex.q.Items)),
			maxs:   make([]types.Value, len(ex.q.Items)),
		}
		ex.groups[key] = gs
		ex.groupSeq = append(ex.groupSeq, key)
	}
	for i, it := range ex.q.Items {
		switch it.Agg {
		case AggNone:
			if gs.counts[i] == 0 {
				v, err := it.Expr.eval(cur)
				if err != nil {
					return err
				}
				gs.reps[i] = v
			}
			gs.counts[i]++
		case AggCount:
			gs.counts[i]++
		default:
			v, err := it.Expr.eval(cur)
			if err != nil {
				return err
			}
			gs.counts[i]++
			gs.sums[i] += v.Float()
			if gs.mins[i].IsNull() || v.Compare(gs.mins[i]) < 0 {
				gs.mins[i] = v
			}
			if gs.maxs[i].IsNull() || v.Compare(gs.maxs[i]) > 0 {
				gs.maxs[i] = v
			}
		}
	}
	return nil
}

// finish materializes grouped output (or returns the row output directly).
func (ex *exec) finish() (*storage.TempTable, error) {
	if !ex.aggregate {
		return ex.out, nil
	}
	for _, key := range ex.groupSeq {
		gs := ex.groups[key]
		row := make([]types.Value, len(ex.q.Items))
		for i, it := range ex.q.Items {
			switch it.Agg {
			case AggNone:
				row[i] = gs.reps[i]
			case AggCount:
				row[i] = types.Int(gs.counts[i])
			case AggSum:
				if ex.itemKind(it) == types.KindInt {
					row[i] = types.Int(int64(gs.sums[i]))
				} else {
					row[i] = types.Float(gs.sums[i])
				}
			case AggAvg:
				row[i] = types.Float(gs.sums[i] / float64(gs.counts[i]))
			case AggMin:
				row[i] = gs.mins[i]
			case AggMax:
				row[i] = gs.maxs[i]
			}
		}
		if err := ex.out.AppendValues(row...); err != nil {
			return nil, err
		}
	}
	return ex.out, nil
}

// sortResult orders a result temp table by the named output columns.
func sortResult(tt *storage.TempTable, orderBy []string, desc bool) error {
	cols := make([]int, len(orderBy))
	for i, name := range orderBy {
		ci := tt.Schema().ColIndex(name)
		if ci < 0 {
			return fmt.Errorf("query: ORDER BY column %q not in select list", name)
		}
		cols[i] = ci
	}
	tt.SortRows(func(a, b int) bool {
		for _, c := range cols {
			cmp := tt.Value(a, c).Compare(tt.Value(b, c))
			if cmp != 0 {
				if desc {
					return cmp > 0
				}
				return cmp < 0
			}
		}
		return false
	})
	return nil
}
