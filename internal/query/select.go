package query

import (
	"fmt"
	"sync/atomic"

	"github.com/stripdb/strip/internal/catalog"
	"github.com/stripdb/strip/internal/cost"
	"github.com/stripdb/strip/internal/obs"
	"github.com/stripdb/strip/internal/storage"
	"github.com/stripdb/strip/internal/txn"
	"github.com/stripdb/strip/internal/types"
)

// Resolver maps a table name to a standard or temporary table. Rule action
// tasks resolve bound tables first and fall back to the database catalog
// (paper §6.3); plain transactions use TxnResolver.
type Resolver interface {
	Resolve(tx *txn.Txn, name string) (*storage.Table, *storage.TempTable, error)
}

// TxnResolver resolves names against the database only, acquiring
// intention-shared table locks through the transaction; the executor then
// locks the individual rows it reads (or escalates a scan to table S).
type TxnResolver struct{}

// Resolve implements Resolver.
func (TxnResolver) Resolve(tx *txn.Txn, name string) (*storage.Table, *storage.TempTable, error) {
	tbl, err := tx.ReadTable(name)
	if err != nil {
		return nil, nil, err
	}
	return tbl, nil, nil
}

// source is one FROM entry after resolution: exactly one of tbl/tmp is set.
type source struct {
	name   string
	schema *catalog.Schema
	tbl    *storage.Table
	tmp    *storage.TempTable
}

// cursor is a source's current position during join iteration.
type cursor struct {
	src *source
	rec *storage.Record // standard-table position
	row int             // temp-table position
}

func (c cursor) value(col int) types.Value {
	if c.src.tbl != nil {
		return c.rec.Value(col)
	}
	return c.src.tmp.Value(c.row, col)
}

// AggKind selects an aggregate function for a select item.
type AggKind uint8

// Aggregates.
const (
	AggNone AggKind = iota
	AggSum
	AggCount
	AggAvg
	AggMin
	AggMax
)

// String names the aggregate.
func (a AggKind) String() string {
	switch a {
	case AggNone:
		return ""
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return "?"
	}
}

// SelectItem is one output column of a Select.
type SelectItem struct {
	Expr Expr
	Agg  AggKind
	As   string // output column name; defaults to the column name for refs
}

// Item builds a plain select item.
func Item(e Expr, as string) SelectItem { return SelectItem{Expr: e, As: as} }

// AggItem builds an aggregate select item.
func AggItem(agg AggKind, e Expr, as string) SelectItem {
	return SelectItem{Expr: e, Agg: agg, As: as}
}

// Select is a select-project-join query with optional grouping.
//
// Execution is staged: the query lowers onto its resolved sources once
// (clone, resolve, plan — see compile.go), the resulting immutable plan
// is cached on the Select and shared across runs whose sources still
// match its signature, and each run streams the plan's operator tree
// (see iter.go) under the calling transaction's lock or snapshot
// discipline.
type Select struct {
	Items   []SelectItem
	From    []string
	Where   []Pred
	GroupBy []*ColRef
	// Star selects every column of every FROM table in order (`select *`);
	// Items must be empty.
	Star bool
	// OrderBy sorts the result by output columns (by name); Desc flips the
	// whole ordering.
	OrderBy []string
	Desc    bool
	// Limit caps the result to the first n rows (applied after OrderBy);
	// zero means no cap.
	Limit int
	// Bind names the result temp table (the `bind as` clause); defaults to
	// "result".
	Bind string

	// cache holds the most recent compiled plan. Plans are immutable and
	// safe to share: concurrent runs load the same pointer and keep all
	// mutable state in their own exec.
	cache atomic.Pointer[compiled]
}

// Run executes the query inside tx, resolving table names through res, and
// returns the result as a temporary table. Results use the §6.1 pointer
// layout for every column that traces back to a standard-table record;
// computed and aggregate columns are materialized.
func (q *Select) Run(tx *txn.Txn, res Resolver) (*storage.TempTable, error) {
	mgr := tx.Manager()
	start := mgr.Clock.Now()
	out, _, err := q.runQuery(tx, res, false)
	mgr.Obs.Counter(obs.MQuerySelects).Inc()
	mgr.Obs.Histogram(obs.MQuerySelectMicros).Record(mgr.Clock.Now() - start)
	return out, err
}

// RunExplain executes like Run and additionally returns the physical
// plan tree annotated with the planner's estimated rows and the actual
// rows each operator produced.
func (q *Select) RunExplain(tx *txn.Txn, res Resolver) (*storage.TempTable, *PlanNode, error) {
	mgr := tx.Manager()
	start := mgr.Clock.Now()
	out, node, err := q.runQuery(tx, res, true)
	mgr.Obs.Counter(obs.MQuerySelects).Inc()
	mgr.Obs.Histogram(obs.MQuerySelectMicros).Record(mgr.Clock.Now() - start)
	return out, node, err
}

func (q *Select) run(tx *txn.Txn, res Resolver) (*storage.TempTable, error) {
	out, _, err := q.runQuery(tx, res, false)
	return out, err
}

func (q *Select) runQuery(tx *txn.Txn, res Resolver, wantNode bool) (*storage.TempTable, *PlanNode, error) {
	model := tx.Model()
	tx.Charge(model.StmtSetup)
	var srcs []*source
	for _, name := range q.From {
		tbl, tmp, err := res.Resolve(tx, name)
		if err != nil {
			return nil, nil, err
		}
		s := &source{name: name, tbl: tbl, tmp: tmp}
		if tbl != nil {
			s.schema = tbl.Schema()
		} else {
			s.schema = tmp.Schema()
		}
		srcs = append(srcs, s)
		tx.Charge(model.OpenCursor)
	}
	if len(srcs) == 0 {
		return nil, nil, fmt.Errorf("query: select with empty FROM")
	}
	c, err := q.ensureCompiled(tx, srcs)
	if err != nil {
		return nil, nil, err
	}
	return c.execute(tx, srcs, nil, wantNode)
}

// execute runs a compiled plan against this run's resolved sources.
// When shared is non-nil the plan's single table source streams those
// pre-materialized records instead of scanning (the shared-scan path,
// which charged the batch scan once for the whole group).
func (c *compiled) execute(tx *txn.Txn, srcs []*source, shared []*storage.Record, wantNode bool) (*storage.TempTable, *PlanNode, error) {
	ex := &exec{
		c:      c,
		q:      c.q,
		tx:     tx,
		model:  tx.Model(),
		prof:   tx.Profile(),
		srcs:   srcs,
		cur:    make([]cursor, len(srcs)),
		shared: shared,
	}
	if c.agg {
		ex.aggregate = true
		ex.groups = make(map[types.Key]*groupState)
	}
	if err := ex.prepareOutput(); err != nil {
		return nil, nil, err
	}

	// Evaluate constant predicates once.
	empty := false
	for _, p := range c.consts {
		ok, err := p.eval(nil)
		if err != nil {
			if shared != nil {
				ex.out.Retire()
			}
			return nil, nil, err
		}
		if !ok {
			empty = true // provably empty
			break
		}
	}

	root := ex.buildTree()
	if !empty {
		if err := ex.drive(root); err != nil {
			// Shared batches isolate per-query errors, so release this
			// query's pinned rows; the per-query path surfaces the error
			// to the transaction, which is about to abort wholesale.
			if shared != nil {
				ex.out.Retire()
			}
			return nil, nil, err
		}
	}
	out, err := ex.finish()
	if err != nil {
		return nil, nil, err
	}
	// Selectivity feedback: only full per-query runs report — a LIMIT may
	// stop the drive early and shared-scan batches stream a subset, so
	// either would undercount against the estimate.
	if shared == nil && c.q.Limit == 0 {
		c.noteActual(ex.matched)
	}
	if len(c.q.OrderBy) > 0 {
		if err := sortResult(out, c.q.OrderBy, c.q.Desc); err != nil {
			out.Retire()
			return nil, nil, err
		}
	}
	sorted := out.Len()
	if c.q.Limit > 0 {
		out.Truncate(c.q.Limit)
	}
	var node *PlanNode
	if wantNode {
		node = ex.explainNode(root, sorted, out.Len())
	}
	return out, node, nil
}

// clone deep-copies the query for a private run.
func (q *Select) clone() *Select {
	cp := &Select{
		Items:   make([]SelectItem, len(q.Items)),
		From:    append([]string(nil), q.From...),
		Where:   make([]Pred, len(q.Where)),
		GroupBy: make([]*ColRef, len(q.GroupBy)),
		Star:    q.Star,
		OrderBy: append([]string(nil), q.OrderBy...),
		Desc:    q.Desc,
		Limit:   q.Limit,
		Bind:    q.Bind,
	}
	for i, it := range q.Items {
		cp.Items[i] = SelectItem{Agg: it.Agg, As: it.As}
		if it.Expr != nil {
			cp.Items[i].Expr = it.Expr.clone()
		}
	}
	for i, p := range q.Where {
		cp.Where[i] = p.clone()
	}
	for i, g := range q.GroupBy {
		cp.GroupBy[i] = g.cloneRef()
	}
	return cp
}

// exec carries the per-run state of a compiled plan: the transaction,
// this run's resolved sources, the joint cursor row the operators write
// into, and the output under construction.
type exec struct {
	c     *compiled
	q     *Select // == c.q: the resolved, immutable query
	tx    *txn.Txn
	model cost.Model
	srcs  []*source
	cur   []cursor
	// shared, when non-nil, replaces the single table source's scan with
	// these pre-materialized records (RunShared).
	shared []*storage.Record
	// prof receives row accounting (rows visited/matched) when the
	// transaction carries a cost profile; nil otherwise.
	prof *txn.TxnProfile
	// matched counts joint rows emitted (pre-aggregation), always on:
	// it feeds selectivity feedback against the plan's estimate.
	matched int64

	// Output construction.
	out      *storage.TempTable
	ptrSlots []ptrSlot // pointer slots of the output layout
	matCols  []int     // item indexes of materialized columns

	// Grouping state.
	groups    map[types.Key]*groupState
	groupSeq  []types.Key
	aggregate bool
}

// ptrSlot identifies one pointer of the output layout: records flow either
// directly from a standard source (tmpPtr == -1) or through a temp source's
// own pointer tmpPtr.
type ptrSlot struct {
	src    int
	tmpPtr int
}

// prepareOutput builds the result temp table: schema, pointer slots, and
// static map.
func (ex *exec) prepareOutput() error {
	name := ex.q.Bind
	if name == "" {
		name = "result"
	}
	cols := make([]catalog.Column, len(ex.q.Items))
	for i, it := range ex.q.Items {
		colName := it.As
		if colName == "" {
			if cr, ok := it.Expr.(*ColRef); ok && it.Agg == AggNone {
				colName = cr.Col
			} else {
				return fmt.Errorf("query: select item %d (%s) needs an alias", i, it.Expr)
			}
		}
		cols[i] = catalog.Column{Name: colName, Kind: ex.itemKind(it)}
	}
	schema, err := catalog.NewSchema(name, cols)
	if err != nil {
		return err
	}

	if ex.aggregate {
		ex.out = storage.NewValueTempTable(schema)
		return nil
	}

	// Pointer layout: share one slot per distinct record origin (paper §6.1:
	// one pointer per standard tuple contributing at least one attribute).
	slotOf := map[ptrSlot]int{}
	srcMap := make([]storage.ColSource, len(ex.q.Items))
	nMat := 0
	for i, it := range ex.q.Items {
		cr, isRef := it.Expr.(*ColRef)
		if !isRef {
			srcMap[i] = storage.Materialized(nMat)
			ex.matCols = append(ex.matCols, i)
			nMat++
			continue
		}
		s := ex.srcs[cr.src]
		var slot ptrSlot
		off := cr.col
		if s.tbl != nil {
			slot = ptrSlot{src: cr.src, tmpPtr: -1}
		} else {
			cs := s.tmp.Source(cr.col)
			if cs.Ptr < 0 {
				// Materialized in the source temp table; copy the value.
				srcMap[i] = storage.Materialized(nMat)
				ex.matCols = append(ex.matCols, i)
				nMat++
				continue
			}
			slot = ptrSlot{src: cr.src, tmpPtr: cs.Ptr}
			off = cs.Off
		}
		idx, ok := slotOf[slot]
		if !ok {
			idx = len(ex.ptrSlots)
			slotOf[slot] = idx
			ex.ptrSlots = append(ex.ptrSlots, slot)
		}
		srcMap[i] = storage.FromRecord(idx, off)
	}
	ex.out, err = storage.NewTempTable(schema, srcMap, len(ex.ptrSlots))
	return err
}

func (ex *exec) itemKind(it SelectItem) types.Kind {
	switch it.Agg {
	case AggCount:
		return types.KindInt
	case AggAvg:
		return types.KindFloat
	}
	return exprKind(it.Expr, ex.srcs)
}

func exprKind(e Expr, srcs []*source) types.Kind {
	switch x := e.(type) {
	case *ColRef:
		return srcs[x.src].schema.Col(x.col).Kind
	case *ConstExpr:
		return x.Val.Kind()
	case *BinExpr:
		if exprKind(x.Left, srcs) == types.KindInt && exprKind(x.Right, srcs) == types.KindInt {
			return types.KindInt
		}
		return types.KindFloat
	case *FuncExpr:
		return types.KindFloat
	default:
		return types.KindNull
	}
}

// groupState accumulates aggregates for one group.
type groupState struct {
	reps   []types.Value // group-by column values in Items order (nil holes)
	counts []int64
	sums   []float64
	mins   []types.Value
	maxs   []types.Value
}

// emit folds the current joint row (ex.cur) into the output: append for
// plain projections, accumulate for aggregates.
func (ex *exec) emit() error {
	cur := ex.cur
	ex.matched++
	if ex.prof != nil {
		ex.prof.RowsMatched++
	}
	if !ex.aggregate {
		ex.tx.Charge(ex.model.OutputRow)
		ptrs := make([]*storage.Record, len(ex.ptrSlots))
		for i, slot := range ex.ptrSlots {
			c := cur[slot.src]
			if slot.tmpPtr < 0 {
				ptrs[i] = c.rec
			} else {
				ptrs[i] = c.src.tmp.RowPtr(c.row, slot.tmpPtr)
			}
		}
		var vals []types.Value
		for _, itemIdx := range ex.matCols {
			v, err := ex.q.Items[itemIdx].Expr.eval(cur)
			if err != nil {
				return err
			}
			vals = append(vals, v)
		}
		return ex.out.AppendRow(ptrs, vals)
	}

	ex.tx.Charge(ex.model.GroupRow)
	keyVals := make([]types.Value, len(ex.q.GroupBy))
	for i, g := range ex.q.GroupBy {
		v, err := g.eval(cur)
		if err != nil {
			return err
		}
		keyVals[i] = v
	}
	key := types.MakeKey(keyVals...)
	gs, ok := ex.groups[key]
	if !ok {
		gs = &groupState{
			reps:   make([]types.Value, len(ex.q.Items)),
			counts: make([]int64, len(ex.q.Items)),
			sums:   make([]float64, len(ex.q.Items)),
			mins:   make([]types.Value, len(ex.q.Items)),
			maxs:   make([]types.Value, len(ex.q.Items)),
		}
		ex.groups[key] = gs
		ex.groupSeq = append(ex.groupSeq, key)
	}
	for i, it := range ex.q.Items {
		switch it.Agg {
		case AggNone:
			if gs.counts[i] == 0 {
				v, err := it.Expr.eval(cur)
				if err != nil {
					return err
				}
				gs.reps[i] = v
			}
			gs.counts[i]++
		case AggCount:
			gs.counts[i]++
		default:
			v, err := it.Expr.eval(cur)
			if err != nil {
				return err
			}
			gs.counts[i]++
			gs.sums[i] += v.Float()
			if gs.mins[i].IsNull() || v.Compare(gs.mins[i]) < 0 {
				gs.mins[i] = v
			}
			if gs.maxs[i].IsNull() || v.Compare(gs.maxs[i]) > 0 {
				gs.maxs[i] = v
			}
		}
	}
	return nil
}

// finish materializes grouped output (or returns the row output directly).
func (ex *exec) finish() (*storage.TempTable, error) {
	if !ex.aggregate {
		return ex.out, nil
	}
	for _, key := range ex.groupSeq {
		gs := ex.groups[key]
		row := make([]types.Value, len(ex.q.Items))
		for i, it := range ex.q.Items {
			switch it.Agg {
			case AggNone:
				row[i] = gs.reps[i]
			case AggCount:
				row[i] = types.Int(gs.counts[i])
			case AggSum:
				if ex.itemKind(it) == types.KindInt {
					row[i] = types.Int(int64(gs.sums[i]))
				} else {
					row[i] = types.Float(gs.sums[i])
				}
			case AggAvg:
				row[i] = types.Float(gs.sums[i] / float64(gs.counts[i]))
			case AggMin:
				row[i] = gs.mins[i]
			case AggMax:
				row[i] = gs.maxs[i]
			}
		}
		if err := ex.out.AppendValues(row...); err != nil {
			return nil, err
		}
	}
	return ex.out, nil
}

// sortResult orders a result temp table by the named output columns.
func sortResult(tt *storage.TempTable, orderBy []string, desc bool) error {
	cols := make([]int, len(orderBy))
	for i, name := range orderBy {
		ci := tt.Schema().ColIndex(name)
		if ci < 0 {
			return fmt.Errorf("query: ORDER BY column %q not in select list", name)
		}
		cols[i] = ci
	}
	tt.SortRows(func(a, b int) bool {
		for _, c := range cols {
			cmp := tt.Value(a, c).Compare(tt.Value(b, c))
			if cmp != 0 {
				if desc {
					return cmp > 0
				}
				return cmp < 0
			}
		}
		return false
	})
	return nil
}
