package query

import (
	"testing"

	"github.com/stripdb/strip/internal/obs"
	"github.com/stripdb/strip/internal/types"
)

// TestSelectSnapshotTakesNoLocks: a read-only transaction's select must not
// touch the lock manager at all — not even while a writer holds an X lock
// on a row the scan visits — and must return the pre-write values.
func TestSelectSnapshotTakesNoLocks(t *testing.T) {
	mgr, lm := lockEnv(t)

	// Writer parks on S2 with an uncommitted update.
	w := mgr.Begin()
	if n, err := updateSymbol(w, "S2", 99); err != nil || n != 1 {
		t.Fatalf("update: n=%d err=%v", n, err)
	}

	base := lm.Stats().Acquires
	ro := mgr.BeginReadOnly()
	q := &Select{
		Items: []SelectItem{Item(Col("symbol"), ""), Item(Col("price"), "")},
		From:  []string{"stocks"},
	}
	res, err := q.Run(ro, TxnResolver{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("snapshot scan rows = %d, want 3", res.Len())
	}
	for i := 0; i < res.Len(); i++ {
		if res.Value(i, 0).Str() == "S2" && res.Value(i, 1).Float() != 40 {
			t.Fatalf("snapshot saw uncommitted update: S2 = %v", res.Value(i, 1))
		}
	}
	res.Retire()
	if err := ro.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := lm.Stats().Acquires; got != base {
		t.Fatalf("snapshot select acquired %d locks", got-base)
	}
	if got := mgr.Obs.Counter(obs.MMvccSnapshotScans).Load(); got == 0 {
		t.Fatal("snapshot scan counter never moved")
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	// A fresh snapshot after the writer commits sees the new value.
	ro2 := mgr.BeginReadOnly()
	res, err = q.Run(ro2, TxnResolver{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]float64{}
	for i := 0; i < res.Len(); i++ {
		seen[res.Value(i, 0).Str()] = res.Value(i, 1).Float()
	}
	res.Retire()
	if seen["S2"] != 99 {
		t.Fatalf("post-commit snapshot S2 = %v, want 99", seen["S2"])
	}
	if err := ro2.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestSelectSnapshotIndexProbe: an indexed equality select in a read-only
// transaction goes through the snapshot probe path, exact while the indexed
// column never churns.
func TestSelectSnapshotIndexProbe(t *testing.T) {
	mgr, lm := lockEnv(t)

	base := lm.Stats().Acquires
	probes := mgr.Obs.Counter(obs.MMvccSnapshotProbes).Load()
	ro := mgr.BeginReadOnly()
	q := &Select{
		Items: []SelectItem{Item(Col("price"), "")},
		From:  []string{"stocks"},
		Where: []Pred{Eq(Col("symbol"), Const(types.Str("S3")))},
	}
	res, err := q.Run(ro, TxnResolver{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Value(0, 0).Float() != 50 {
		t.Fatalf("probe rows = %v", rows(res))
	}
	res.Retire()
	if err := ro.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := lm.Stats().Acquires; got != base {
		t.Fatalf("snapshot probe acquired %d locks", got-base)
	}
	if got := mgr.Obs.Counter(obs.MMvccSnapshotProbes).Load(); got != probes+1 {
		t.Fatalf("snapshot probe counter = %d, want %d", got, probes+1)
	}
}
