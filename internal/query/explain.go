package query

import (
	"fmt"
	"strings"
)

// PlanNode is one operator of an executed physical plan, for EXPLAIN
// surfaces: the planner's estimated row count next to the rows the
// operator actually produced during the run.
type PlanNode struct {
	Op       string
	Detail   string
	EstRows  float64
	ActRows  int64
	Children []*PlanNode
}

// explainNode assembles the full plan tree after a run, appending the
// post-pass operators (sort, limit) above the streamed pipeline.
// sorted is the row count entering the limit (after any sort), final
// the count after it.
func (ex *exec) explainNode(root op, sorted, final int) *PlanNode {
	n := root.node()
	if len(ex.q.OrderBy) > 0 {
		detail := strings.Join(ex.q.OrderBy, ", ")
		if ex.q.Desc {
			detail += " desc"
		}
		n = &PlanNode{
			Op:       "sort",
			Detail:   detail,
			EstRows:  n.EstRows,
			ActRows:  int64(sorted),
			Children: []*PlanNode{n},
		}
	}
	if ex.q.Limit > 0 {
		est := n.EstRows
		if lim := float64(ex.q.Limit); lim < est {
			est = lim
		}
		n = &PlanNode{
			Op:       "limit",
			Detail:   fmt.Sprint(ex.q.Limit),
			EstRows:  est,
			ActRows:  int64(final),
			Children: []*PlanNode{n},
		}
	}
	return n
}

// Format renders the plan tree as indented text, one operator per line:
//
//	project id, name (est=12 act=9)
//	  join nested loop (est=12 act=9)
//	    scan stocks locked (est=2000 act=2000)
//	    probe trades.symbol = stocks.symbol (est=10 act=9)
func (n *PlanNode) Format() string {
	var b strings.Builder
	n.format(&b, 0)
	return b.String()
}

func (n *PlanNode) format(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(n.Op)
	if n.Detail != "" {
		b.WriteString(" ")
		b.WriteString(n.Detail)
	}
	fmt.Fprintf(b, " (est=%s act=%d)\n", fmtEst(n.EstRows), n.ActRows)
	for _, c := range n.Children {
		c.format(b, depth+1)
	}
}

// Lines flattens the rendered plan for row-per-line surfaces (db.Exec).
func (n *PlanNode) Lines() []string {
	return strings.Split(strings.TrimRight(n.Format(), "\n"), "\n")
}

func fmtEst(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.1f", v)
}
