package query

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/stripdb/strip/internal/catalog"
	"github.com/stripdb/strip/internal/clock"
	"github.com/stripdb/strip/internal/cost"
	"github.com/stripdb/strip/internal/lock"
	"github.com/stripdb/strip/internal/storage"
	"github.com/stripdb/strip/internal/txn"
	"github.com/stripdb/strip/internal/types"
)

// twoTableEnv builds tables a(ka, va) and b(kb, vb) with three committed
// rows each, for join tests spanning two latches.
func twoTableEnv(t testing.TB) *txn.Manager {
	t.Helper()
	cat := catalog.New()
	store := storage.NewStore()
	for _, def := range []struct{ name, k, v string }{
		{"a", "ka", "va"},
		{"b", "kb", "vb"},
	} {
		schema := catalog.MustSchema(def.name,
			catalog.Column{Name: def.k, Kind: types.KindString},
			catalog.Column{Name: def.v, Kind: types.KindFloat})
		if err := cat.Define(schema); err != nil {
			t.Fatal(err)
		}
		if _, err := store.Create(schema); err != nil {
			t.Fatal(err)
		}
	}
	mgr := txn.NewManager(cat, store, lock.New(), clock.NewVirtual(), cost.NewMeter(), cost.Default())
	tx := mgr.Begin()
	for _, tbl := range []string{"a", "b"} {
		for i := 0; i < 3; i++ {
			key := types.Str(tbl + string(rune('1'+i)))
			if _, err := tx.Insert(tbl, []types.Value{key, types.Float(float64(i))}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return mgr
}

// TestSnapshotJoinOppositeOrdersWithWriters is the latch-deadlock
// regression test: a snapshot scan must not hold its table latch while the
// join recurses into another table's scan. Held across recursion, two
// snapshot joins in opposite table orders plus a pending writer latch on
// each table deadlock (RWMutex is writer-preferring, and snapshot reads
// take no table S locks that would serialize writers earlier) — invisible
// to the lock manager's deadlock detector, so the queries would hang
// forever. The test fails via watchdog timeout instead.
func TestSnapshotJoinOppositeOrdersWithWriters(t *testing.T) {
	mgr := twoTableEnv(t)

	const iters = 400
	var stop atomic.Bool
	var all sync.WaitGroup
	var readers sync.WaitGroup

	writer := func(table, col string) {
		defer all.Done()
		for i := 0; !stop.Load(); i++ {
			w := mgr.Begin()
			stmt := &UpdateStmt{
				Table: table,
				Set:   []SetClause{{Col: col, Expr: Const(types.Float(float64(i)))}},
			}
			if _, err := stmt.Run(w); err != nil {
				t.Error(err)
				w.Abort()
				return
			}
			if err := w.Commit(); err != nil {
				t.Error(err)
				return
			}
		}
	}
	reader := func(from []string) {
		defer all.Done()
		defer readers.Done()
		q := &Select{
			Items: []SelectItem{Item(Col("va"), ""), Item(Col("vb"), "")},
			From:  from,
		}
		for i := 0; i < iters; i++ {
			ro := mgr.BeginReadOnly()
			res, err := q.Run(ro, TxnResolver{})
			if err != nil {
				t.Error(err)
				ro.Abort()
				return
			}
			if res.Len() != 9 {
				t.Errorf("join rows = %d, want 9", res.Len())
			}
			res.Retire()
			if err := ro.Commit(); err != nil {
				t.Error(err)
				return
			}
		}
	}

	all.Add(4)
	readers.Add(2)
	go writer("a", "va")
	go writer("b", "vb")
	go reader([]string{"a", "b"})
	go reader([]string{"b", "a"})
	go func() {
		readers.Wait()
		stop.Store(true)
	}()

	done := make(chan struct{})
	go func() {
		all.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("snapshot joins deadlocked against writers: table latch held across join recursion")
	}
}
