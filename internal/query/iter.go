package query

import (
	"fmt"
	"strings"

	"github.com/stripdb/strip/internal/obs"
	"github.com/stripdb/strip/internal/storage"
	"github.com/stripdb/strip/internal/txn"
	"github.com/stripdb/strip/internal/types"
)

// op is a Volcano-style streaming iterator. open positions the
// operator (re-opening an inner operator restarts it for the next
// outer row), next advances it one row — operators publish their
// current row by writing the owning source's cursor into exec.cur, so
// expressions evaluate against the joint row without copying — and
// node reports the operator's explain entry with estimated and actual
// rows.
type op interface {
	open() error
	next() (bool, error)
	close()
	node() *PlanNode
}

// buildTree assembles the physical operator tree for a compiled plan:
// a left-deep chain of nested-loop joins over scan/probe leaves (each
// wrapped in a filter when residual predicates apply), topped by a
// project or aggregate sink.
func (ex *exec) buildTree() op {
	var root op
	for pos := range ex.c.levels {
		lp := &ex.c.levels[pos]
		var acc op
		if lp.probe != nil {
			acc = &probeOp{ex: ex, lp: lp, pos: pos}
		} else {
			acc = &scanOp{ex: ex, lp: lp, pos: pos}
		}
		if len(lp.resid) > 0 {
			acc = &filterOp{ex: ex, lp: lp, child: acc}
		}
		if root == nil {
			root = acc
		} else {
			root = &joinOp{left: root, right: acc, est: lp.estOut}
		}
	}
	if ex.c.agg {
		return &aggOp{ex: ex, child: root}
	}
	return &projectOp{ex: ex, child: root}
}

// drive pulls the root until exhausted. With a LIMIT and no ordering
// or grouping, it stops as soon as the output is full.
func (ex *exec) drive(root op) error {
	if err := root.open(); err != nil {
		return err
	}
	defer root.close()
	limit := ex.c.q.Limit
	early := limit > 0 && !ex.c.agg && len(ex.c.q.OrderBy) == 0
	for {
		ok, err := root.next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if early && ex.out.Len() >= limit {
			return nil
		}
	}
}

// scanOp iterates one source: a temp table by row index, a standard
// table by materializing the visible record set on first open — under
// the table S lock for locked reads, or lock-free at the transaction's
// snapshot. The visible set is collected under the table latch and
// visited only after it is released: with no table S locks serializing
// writers on the snapshot path, a latch held across the consumer (which
// may latch another table, or this one again) can deadlock against a
// queued writer (RWMutex is writer-preferring). The materialized set is
// reused across re-opens within the run — legal because either the S
// lock or the fixed snapshot pins the visible set — so an inner scan
// pays the real scan once per query instead of once per outer row; the
// virtual ScanRow charge is still paid per yielded row for cost parity
// with the paper's model.
type scanOp struct {
	ex   *exec
	lp   *levelPlan
	pos  int
	mode string
	recs []*storage.Record
	mat  bool
	i    int
	rows int64
}

func (o *scanOp) open() error {
	o.i = 0
	s := o.ex.srcs[o.lp.src]
	if o.ex.shared != nil && s.tbl != nil {
		// Shared-scan leaf: the batch already materialized the record
		// set at the group snapshot and charged its scan once.
		o.recs, o.mode, o.mat = o.ex.shared, "shared", true
		return nil
	}
	if s.tbl == nil {
		o.mode = "temp"
		return nil
	}
	if o.mat {
		return nil
	}
	if snap, me, ok := o.ex.tx.SnapshotRead(); ok {
		o.mode = "snapshot"
		o.ex.tx.Manager().Obs.Counter(obs.MMvccSnapshotScans).Inc()
		s.tbl.ScanSnapshot(snap, me, func(r *storage.Record) bool {
			o.recs = append(o.recs, r)
			return true
		})
	} else {
		// A full scan locks the whole table shared rather than every
		// row (read-side escalation); this also shuts out record
		// writers whose IX would otherwise let rows change mid-scan.
		o.mode = "locked"
		if _, err := o.ex.tx.ScanTable(s.name); err != nil {
			return err
		}
		s.tbl.Scan(func(r *storage.Record) bool {
			o.recs = append(o.recs, r)
			return true
		})
	}
	o.mat = true
	return nil
}

func (o *scanOp) next() (bool, error) {
	ex := o.ex
	s := ex.srcs[o.lp.src]
	if s.tbl == nil {
		if o.i >= s.tmp.Len() {
			return false, nil
		}
		ex.tx.Charge(ex.model.ScanRow)
		ex.cur[o.lp.src] = cursor{src: s, row: o.i}
	} else {
		if o.i >= len(o.recs) {
			return false, nil
		}
		if ex.shared == nil {
			ex.tx.Charge(ex.model.ScanRow)
		}
		ex.cur[o.lp.src] = cursor{src: s, rec: o.recs[o.i]}
	}
	o.i++
	if ex.prof != nil {
		ex.prof.RowsScanned++
	}
	if o.pos > 0 {
		ex.tx.Charge(ex.model.JoinRow)
	}
	o.rows++
	return true, nil
}

func (o *scanOp) close() {}

func (o *scanOp) node() *PlanNode {
	s := o.ex.srcs[o.lp.src]
	mode := o.mode
	if mode == "" {
		mode = "unopened"
	}
	return &PlanNode{
		Op:      "scan",
		Detail:  fmt.Sprintf("%s %s", s.name, mode),
		EstRows: o.lp.estAccess,
		ActRows: o.rows,
	}
}

// probeOp is an index nested-loop step: each open evaluates the key
// expression against the outer cursors and looks up the source's index
// — lock-free against the snapshot, or S-locking exactly the probed
// rows.
type probeOp struct {
	ex   *exec
	lp   *levelPlan
	pos  int
	recs []*storage.Record
	i    int
	rows int64
}

func (o *probeOp) open() error {
	o.i = 0
	ex := o.ex
	v, err := o.lp.probe.expr.eval(ex.cur)
	if err != nil {
		return err
	}
	ex.tx.Charge(ex.model.IndexProbe)
	o.recs, err = lookupRecords(ex.tx, ex.srcs[o.lp.src], o.lp.probe.col, v)
	return err
}

func (o *probeOp) next() (bool, error) {
	ex := o.ex
	if o.i >= len(o.recs) {
		return false, nil
	}
	ex.cur[o.lp.src] = cursor{src: ex.srcs[o.lp.src], rec: o.recs[o.i]}
	o.i++
	if ex.prof != nil {
		ex.prof.RowsScanned++
	}
	if o.pos > 0 {
		ex.tx.Charge(ex.model.JoinRow)
	}
	o.rows++
	return true, nil
}

func (o *probeOp) close() {}

func (o *probeOp) node() *PlanNode {
	s := o.ex.srcs[o.lp.src]
	return &PlanNode{
		Op:      "probe",
		Detail:  fmt.Sprintf("%s.%s = %s", s.name, o.lp.probe.col, o.lp.probe.expr),
		EstRows: o.lp.estAccess,
		ActRows: o.rows,
	}
}

// filterOp applies a level's residual predicates.
type filterOp struct {
	ex    *exec
	lp    *levelPlan
	child op
	rows  int64
}

func (o *filterOp) open() error { return o.child.open() }

func (o *filterOp) next() (bool, error) {
	for {
		ok, err := o.child.next()
		if err != nil || !ok {
			return ok, err
		}
		pass := true
		for _, p := range o.lp.resid {
			hold, err := p.eval(o.ex.cur)
			if err != nil {
				return false, err
			}
			if !hold {
				pass = false
				break
			}
		}
		if pass {
			o.rows++
			return true, nil
		}
	}
}

func (o *filterOp) close() { o.child.close() }

func (o *filterOp) node() *PlanNode {
	parts := make([]string, len(o.lp.resid))
	for i, p := range o.lp.resid {
		parts[i] = p.String()
	}
	return &PlanNode{
		Op:       "filter",
		Detail:   strings.Join(parts, " and "),
		EstRows:  o.lp.estOut,
		ActRows:  o.rows,
		Children: []*PlanNode{o.child.node()},
	}
}

// joinOp is a nested-loop join: for each left row it re-opens the right
// side (re-evaluating probes against the new outer cursors) and streams
// the cross-matched rows.
type joinOp struct {
	left, right op
	liveRight   bool
	est         float64
	rows        int64
}

func (j *joinOp) open() error {
	j.liveRight = false
	return j.left.open()
}

func (j *joinOp) next() (bool, error) {
	for {
		if !j.liveRight {
			ok, err := j.left.next()
			if err != nil || !ok {
				return false, err
			}
			if err := j.right.open(); err != nil {
				return false, err
			}
			j.liveRight = true
		}
		ok, err := j.right.next()
		if err != nil {
			return false, err
		}
		if ok {
			j.rows++
			return true, nil
		}
		j.right.close()
		j.liveRight = false
	}
}

func (j *joinOp) close() {
	if j.liveRight {
		j.right.close()
		j.liveRight = false
	}
	j.left.close()
}

func (j *joinOp) node() *PlanNode {
	return &PlanNode{
		Op:       "join",
		Detail:   "nested loop",
		EstRows:  j.est,
		ActRows:  j.rows,
		Children: []*PlanNode{j.left.node(), j.right.node()},
	}
}

// projectOp emits each joint row into the output temp table.
type projectOp struct {
	ex    *exec
	child op
	rows  int64
}

func (o *projectOp) open() error { return o.child.open() }

func (o *projectOp) next() (bool, error) {
	ok, err := o.child.next()
	if err != nil || !ok {
		return ok, err
	}
	if err := o.ex.emit(); err != nil {
		return false, err
	}
	o.rows++
	return true, nil
}

func (o *projectOp) close() { o.child.close() }

func (o *projectOp) node() *PlanNode {
	return &PlanNode{
		Op:       "project",
		Detail:   itemList(o.ex.c.q),
		EstRows:  o.ex.c.estRows,
		ActRows:  o.rows,
		Children: []*PlanNode{o.child.node()},
	}
}

// aggOp drains its child, folding every joint row into the group table;
// the groups materialize in exec.finish.
type aggOp struct {
	ex    *exec
	child op
	done  bool
}

func (o *aggOp) open() error { return o.child.open() }

func (o *aggOp) next() (bool, error) {
	if o.done {
		return false, nil
	}
	for {
		ok, err := o.child.next()
		if err != nil {
			return false, err
		}
		if !ok {
			o.done = true
			return false, nil
		}
		if err := o.ex.emit(); err != nil {
			return false, err
		}
	}
}

func (o *aggOp) close() { o.child.close() }

func (o *aggOp) node() *PlanNode {
	detail := itemList(o.ex.c.q)
	if len(o.ex.c.q.GroupBy) > 0 {
		parts := make([]string, len(o.ex.c.q.GroupBy))
		for i, g := range o.ex.c.q.GroupBy {
			parts[i] = g.String()
		}
		detail += " group by " + strings.Join(parts, ", ")
	}
	return &PlanNode{
		Op:       "aggregate",
		Detail:   detail,
		EstRows:  o.ex.c.estRows,
		ActRows:  int64(len(o.ex.groupSeq)),
		Children: []*PlanNode{o.child.node()},
	}
}

func itemList(q *Select) string {
	parts := make([]string, len(q.Items))
	for i, it := range q.Items {
		s := it.Expr.String()
		if it.Agg != AggNone {
			s = fmt.Sprintf("%s(%s)", it.Agg, s)
		}
		parts[i] = s
	}
	return strings.Join(parts, ", ")
}

// lookupRecords resolves an index probe: lock-free against the
// transaction's snapshot when snapshot reads are enabled, otherwise
// through lockedLookup's record S locks.
func lookupRecords(tx *txn.Txn, s *source, col string, v types.Value) ([]*storage.Record, error) {
	snap, me, ok := tx.SnapshotRead()
	if !ok {
		return lockedLookup(tx, s, col, v)
	}
	tx.Manager().Obs.Counter(obs.MMvccSnapshotProbes).Inc()
	if recs, exact := s.tbl.LookupSnapshot(col, v, snap, me); exact {
		return recs, nil
	}
	// An update changed an indexed column's value on this table, so the
	// index (which covers head versions only) could miss older versions
	// that match. Fall back to a filtered snapshot scan.
	ci := s.tbl.Schema().ColIndex(col)
	var recs []*storage.Record
	s.tbl.ScanSnapshot(snap, me, func(r *storage.Record) bool {
		if r.Value(ci).Equal(v) {
			recs = append(recs, r)
		}
		return true
	})
	return recs, nil
}

// lockedLookup probes the index and S-locks exactly the rows it
// returns. Acquiring the record lock can block behind a writer that
// replaces or deletes the row before committing (copy-on-update
// replacements keep the lock ID); when the granted record turns out
// stale the probe re-runs — the lock already held covers the
// replacement, so a bounded number of retries settles unless the index
// entry churns pathologically, in which case the probe escalates to a
// whole-table S as the always-correct fallback.
func lockedLookup(tx *txn.Txn, s *source, col string, v types.Value) ([]*storage.Record, error) {
	const maxAttempts = 3
	for attempt := 0; attempt < maxAttempts; attempt++ {
		recs, _ := s.tbl.IndexLookup(col, v)
		out := recs[:0]
		stale := false
		for _, r := range recs {
			if err := tx.LockRecordShared(s.name, r.ID()); err != nil {
				return nil, err
			}
			if !r.Live() {
				stale = true
				break
			}
			out = append(out, r)
		}
		if !stale {
			return out, nil
		}
	}
	if _, err := tx.ScanTable(s.name); err != nil {
		return nil, err
	}
	recs, _ := s.tbl.IndexLookup(col, v)
	return recs, nil
}
