package query

import (
	"testing"
	"time"

	"github.com/stripdb/strip/internal/catalog"
	"github.com/stripdb/strip/internal/clock"
	"github.com/stripdb/strip/internal/cost"
	"github.com/stripdb/strip/internal/index"
	"github.com/stripdb/strip/internal/lock"
	"github.com/stripdb/strip/internal/storage"
	"github.com/stripdb/strip/internal/txn"
	"github.com/stripdb/strip/internal/types"
)

// lockEnv is env with the lock manager exposed, for tests that assert which
// rows the executor locks rather than what it returns.
func lockEnv(t testing.TB) (*txn.Manager, *lock.Manager) {
	t.Helper()
	cat := catalog.New()
	store := storage.NewStore()
	schema := catalog.MustSchema("stocks",
		catalog.Column{Name: "symbol", Kind: types.KindString},
		catalog.Column{Name: "price", Kind: types.KindFloat})
	if err := cat.Define(schema); err != nil {
		t.Fatal(err)
	}
	stocks, err := store.Create(schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := stocks.CreateIndex("symbol", index.Hash); err != nil {
		t.Fatal(err)
	}
	lm := lock.New()
	mgr := txn.NewManager(cat, store, lm, clock.NewVirtual(), cost.NewMeter(), cost.Default())
	tx := mgr.Begin()
	for _, r := range [][]types.Value{
		{types.Str("S1"), types.Float(30)},
		{types.Str("S2"), types.Float(40)},
		{types.Str("S3"), types.Float(50)},
	} {
		if _, err := tx.Insert("stocks", r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return mgr, lm
}

func waitForQueryWaiters(t *testing.T, lm *lock.Manager, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for lm.Stats().Waits < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d lock waiters (stats %+v)", n, lm.Stats())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func updateSymbol(tx *txn.Txn, sym string, price float64) (int, error) {
	stmt := &UpdateStmt{
		Table: "stocks",
		Set:   []SetClause{{Col: "price", Expr: Const(types.Float(price))}},
		Where: []Pred{Eq(Col("symbol"), Const(types.Str(sym)))},
	}
	return stmt.Run(tx)
}

// An indexed UPDATE locks only the probed row: a writer on a different
// symbol commits without waiting, while a writer on the same symbol blocks
// until the first transaction releases.
func TestUpdateProbeLocksOnlyProbedRow(t *testing.T) {
	mgr, lm := lockEnv(t)

	tx1 := mgr.Begin()
	if n, err := updateSymbol(tx1, "S1", 31); err != nil || n != 1 {
		t.Fatalf("update S1: n=%d err=%v", n, err)
	}

	// Disjoint row: completes while tx1 still holds S1's record X.
	tx2 := mgr.Begin()
	if n, err := updateSymbol(tx2, "S2", 41); err != nil || n != 1 {
		t.Fatalf("update S2: n=%d err=%v", n, err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if w := lm.Stats().Waits; w != 0 {
		t.Fatalf("disjoint-row update waited %d times", w)
	}

	// Same row: must block until tx1 commits.
	done := make(chan error, 1)
	go func() {
		tx3 := mgr.Begin()
		if _, err := updateSymbol(tx3, "S1", 32); err != nil {
			done <- err
			return
		}
		done <- tx3.Commit()
	}()
	waitForQueryWaiters(t, lm, 1)
	select {
	case err := <-done:
		t.Fatalf("same-row update did not block (err=%v)", err)
	default:
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// An indexed SELECT takes IS plus a shared lock on just the probed row, so
// a concurrent writer on another row proceeds while a writer on the probed
// row waits.
func TestSelectProbeLocksOnlyProbedRow(t *testing.T) {
	mgr, lm := lockEnv(t)

	tx1 := mgr.Begin()
	q := &Select{
		Items: []SelectItem{Item(Col("price"), "")},
		From:  []string{"stocks"},
		Where: []Pred{Eq(Col("symbol"), Const(types.Str("S1")))},
	}
	res, err := q.Run(tx1, TxnResolver{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("probe returned %d rows", res.Len())
	}
	res.Retire()

	tx2 := mgr.Begin()
	if n, err := updateSymbol(tx2, "S2", 41); err != nil || n != 1 {
		t.Fatalf("update S2: n=%d err=%v", n, err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if w := lm.Stats().Waits; w != 0 {
		t.Fatalf("reader's probe blocked a disjoint writer (%d waits)", w)
	}

	done := make(chan error, 1)
	go func() {
		tx3 := mgr.Begin()
		if _, err := updateSymbol(tx3, "S1", 33); err != nil {
			done <- err
			return
		}
		done <- tx3.Commit()
	}()
	waitForQueryWaiters(t, lm, 1)
	select {
	case err := <-done:
		t.Fatalf("same-row writer did not block behind probe S lock (err=%v)", err)
	default:
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// A SELECT with no usable index escalates to a full table S, which must
// wait for a record-granularity writer rather than race past it.
func TestScanSelectBlocksOnRecordWriter(t *testing.T) {
	mgr, lm := lockEnv(t)

	tx1 := mgr.Begin()
	if n, err := updateSymbol(tx1, "S1", 31); err != nil || n != 1 {
		t.Fatalf("update S1: n=%d err=%v", n, err)
	}

	done := make(chan error, 1)
	go func() {
		tx2 := mgr.Begin()
		q := &Select{
			Items: []SelectItem{Item(Col("symbol"), "")},
			From:  []string{"stocks"},
		}
		res, err := q.Run(tx2, TxnResolver{})
		if err != nil {
			done <- err
			return
		}
		res.Retire()
		done <- tx2.Commit()
	}()
	waitForQueryWaiters(t, lm, 1)
	select {
	case err := <-done:
		t.Fatalf("full scan did not block behind record writer (err=%v)", err)
	default:
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
