package query

import (
	"fmt"
	"sync"
	"testing"

	"github.com/stripdb/strip/internal/obs"
	"github.com/stripdb/strip/internal/types"
)

// Rules re-run their condition queries on every firing; Run must not
// mutate the caller's Select (resolution state, star expansion).
func TestSelectReusableAcrossRuns(t *testing.T) {
	mgr := env(t)
	q := &Select{
		Items: []SelectItem{
			Item(QCol("comps_list", "comp"), ""),
			Item(Arith(QCol("stocks", "price"), '*', QCol("comps_list", "weight")), "wp"),
		},
		From:  []string{"stocks", "comps_list"},
		Where: []Pred{Eq(QCol("comps_list", "symbol"), QCol("stocks", "symbol"))},
	}
	for i := 0; i < 3; i++ {
		tx := mgr.Begin()
		res, err := q.Run(tx, TxnResolver{})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if res.Len() != 4 {
			t.Fatalf("run %d: %d rows", i, res.Len())
		}
		res.Retire()
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if len(q.Items) != 2 {
		t.Errorf("caller's Items mutated: %d", len(q.Items))
	}
}

func TestStarReusableAcrossRuns(t *testing.T) {
	mgr := env(t)
	q := &Select{Star: true, From: []string{"stocks"}}
	for i := 0; i < 3; i++ {
		tx := mgr.Begin()
		res, err := q.Run(tx, TxnResolver{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Schema().NumCols() != 2 {
			t.Fatalf("run %d: star expanded to %d cols", i, res.Schema().NumCols())
		}
		res.Retire()
		tx.Commit()
	}
	if len(q.Items) != 0 {
		t.Errorf("star expansion leaked into caller: %d items", len(q.Items))
	}
	// Star with explicit items is rejected.
	bad := &Select{Star: true, Items: []SelectItem{Item(Col("symbol"), "")}, From: []string{"stocks"}}
	tx := mgr.Begin()
	defer tx.Commit()
	if _, err := bad.Run(tx, TxnResolver{}); err == nil {
		t.Error("star mixed with items accepted")
	}
}

// Concurrent runs of one shared Select must be safe (live mode fires the
// same rule from many committing transactions).
func TestSelectConcurrentRuns(t *testing.T) {
	mgr := env(t)
	q := &Select{
		Items: []SelectItem{Item(Col("comp"), ""), Item(Col("weight"), "")},
		From:  []string{"comps_list"},
		Where: []Pred{Cmp(Col("weight"), GT, Const(types.Float(0)))},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				tx := mgr.Begin()
				res, err := q.Run(tx, TxnResolver{})
				if err != nil {
					errs <- err
					tx.Abort()
					return
				}
				if res.Len() != 4 {
					errs <- errWrongRows
				}
				res.Retire()
				tx.Commit()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errWrongRows = errType("wrong row count")

type errType string

func (e errType) Error() string { return string(e) }

// Repeated identical queries — the shape a rule's evaluate query takes —
// must reuse the cached immutable plan: one build, then hits, until a
// source changes shape (row-count magnitude, index count, planner mode).
func TestPlanCacheReuse(t *testing.T) {
	mgr := env(t)
	builds := mgr.Obs.Counter(obs.MQueryPlanBuilds)
	hits := mgr.Obs.Counter(obs.MQueryPlanHits)
	q := &Select{
		Items: []SelectItem{
			Item(QCol("comps_list", "comp"), ""),
			Item(QCol("stocks", "price"), "price"),
		},
		From:  []string{"stocks", "comps_list"},
		Where: []Pred{Eq(QCol("comps_list", "symbol"), QCol("stocks", "symbol"))},
	}
	run := func() {
		t.Helper()
		tx := mgr.Begin()
		res, err := q.Run(tx, TxnResolver{})
		if err != nil {
			t.Fatal(err)
		}
		res.Retire()
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	b0, h0 := builds.Load(), hits.Load()
	for i := 0; i < 5; i++ {
		run()
	}
	if got := builds.Load() - b0; got != 1 {
		t.Fatalf("plan builds = %d, want 1", got)
	}
	if got := hits.Load() - h0; got != 4 {
		t.Fatalf("plan hits = %d, want 4", got)
	}

	// Growing a source past its log2 row bucket invalidates the signature:
	// the next run replans, later runs hit again.
	tx := mgr.Begin()
	for i := 0; i < 64; i++ {
		if _, err := tx.Insert("stocks", []types.Value{
			types.Str(fmt.Sprintf("G%03d", i)), types.Float(1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	b1 := builds.Load()
	run()
	run()
	if got := builds.Load() - b1; got != 1 {
		t.Fatalf("plan builds after growth = %d, want 1", got)
	}

	// Flipping the planner mode replans too.
	mgr.PlanFixedOrder = true
	b2 := builds.Load()
	run()
	if got := builds.Load() - b2; got != 1 {
		t.Fatalf("plan builds after mode flip = %d, want 1", got)
	}
	mgr.PlanFixedOrder = false

	// A warm plan is shared by concurrent runs without rebuilding.
	run() // rebuild once for the cost mode
	b3 := builds.Load()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				tx := mgr.Begin()
				res, err := q.Run(tx, TxnResolver{})
				if err == nil {
					res.Retire()
					tx.Commit()
				} else {
					tx.Abort()
				}
			}
		}()
	}
	wg.Wait()
	if got := builds.Load() - b3; got != 0 {
		t.Fatalf("concurrent warm runs rebuilt %d times, want 0", got)
	}
}
