package query

import (
	"sync"
	"testing"

	"github.com/stripdb/strip/internal/types"
)

// Rules re-run their condition queries on every firing; Run must not
// mutate the caller's Select (resolution state, star expansion).
func TestSelectReusableAcrossRuns(t *testing.T) {
	mgr := env(t)
	q := &Select{
		Items: []SelectItem{
			Item(QCol("comps_list", "comp"), ""),
			Item(Arith(QCol("stocks", "price"), '*', QCol("comps_list", "weight")), "wp"),
		},
		From:  []string{"stocks", "comps_list"},
		Where: []Pred{Eq(QCol("comps_list", "symbol"), QCol("stocks", "symbol"))},
	}
	for i := 0; i < 3; i++ {
		tx := mgr.Begin()
		res, err := q.Run(tx, TxnResolver{})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if res.Len() != 4 {
			t.Fatalf("run %d: %d rows", i, res.Len())
		}
		res.Retire()
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if len(q.Items) != 2 {
		t.Errorf("caller's Items mutated: %d", len(q.Items))
	}
}

func TestStarReusableAcrossRuns(t *testing.T) {
	mgr := env(t)
	q := &Select{Star: true, From: []string{"stocks"}}
	for i := 0; i < 3; i++ {
		tx := mgr.Begin()
		res, err := q.Run(tx, TxnResolver{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Schema().NumCols() != 2 {
			t.Fatalf("run %d: star expanded to %d cols", i, res.Schema().NumCols())
		}
		res.Retire()
		tx.Commit()
	}
	if len(q.Items) != 0 {
		t.Errorf("star expansion leaked into caller: %d items", len(q.Items))
	}
	// Star with explicit items is rejected.
	bad := &Select{Star: true, Items: []SelectItem{Item(Col("symbol"), "")}, From: []string{"stocks"}}
	tx := mgr.Begin()
	defer tx.Commit()
	if _, err := bad.Run(tx, TxnResolver{}); err == nil {
		t.Error("star mixed with items accepted")
	}
}

// Concurrent runs of one shared Select must be safe (live mode fires the
// same rule from many committing transactions).
func TestSelectConcurrentRuns(t *testing.T) {
	mgr := env(t)
	q := &Select{
		Items: []SelectItem{Item(Col("comp"), ""), Item(Col("weight"), "")},
		From:  []string{"comps_list"},
		Where: []Pred{Cmp(Col("weight"), GT, Const(types.Float(0)))},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				tx := mgr.Begin()
				res, err := q.Run(tx, TxnResolver{})
				if err != nil {
					errs <- err
					tx.Abort()
					return
				}
				if res.Len() != 4 {
					errs <- errWrongRows
				}
				res.Retire()
				tx.Commit()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errWrongRows = errType("wrong row count")

type errType string

func (e errType) Error() string { return string(e) }
