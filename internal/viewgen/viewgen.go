// Package viewgen generates derived-data maintenance rules from
// materialized view definitions — the paper's §8 future-work direction:
// "it should be possible for a materialized view manager to derive not
// just the rules to maintain a view but the unit of batching and delay
// window size as well", building on Ceri & Widom's automatic rule
// derivation [CW91].
//
// Two view shapes are supported, matching the paper's two experiment
// classes:
//
//   - aggregation views  SELECT g, sum(expr) FROM base, dim WHERE
//     dim.k = base.k GROUP BY g  (comp_prices-like), and
//   - per-row function views  SELECT d, f(args...) FROM base, dim WHERE
//     dim.k = base.k  (option_prices-like).
//
// Each shape is maintainable in one of two modes. Delta maintenance (the
// default when the needed indexes exist) compiles the rule action into
// delta plans: operator trees whose leaves are the firing's transition
// tables joined against the dimension via index probes, producing
// per-group (or per-row) delta rows applied to the derived table in
// O(|delta|). Full maintenance rebuilds the derived table from its
// defining query in O(|base|) — it remains available as an explicit mode
// and as the per-rule fallback when a delta consistency check trips.
//
// Given the view definition and workload statistics, Advise picks the unit
// of batching and delay window by the paper's two rules of thumb (§8):
// the unit should be "just large enough to take advantage of the
// redundancy in the recomputation but no larger", and the window should
// start small and grow only if load demands it.
package viewgen

import (
	"errors"
	"fmt"

	"github.com/stripdb/strip/internal/catalog"
	"github.com/stripdb/strip/internal/clock"
	"github.com/stripdb/strip/internal/core"
	"github.com/stripdb/strip/internal/obs"
	"github.com/stripdb/strip/internal/query"
	"github.com/stripdb/strip/internal/storage"
	"github.com/stripdb/strip/internal/types"
)

// Kind classifies a supported view shape.
type Kind uint8

// View shapes.
const (
	// Aggregation is a grouped sum over a join.
	Aggregation Kind = iota
	// PerRowFunction computes a scalar function per join row.
	PerRowFunction
)

// Mode selects how the generated rule maintains the materialized table.
type Mode uint8

// Maintenance modes.
const (
	// ModeAuto picks delta maintenance when DeltaRequirements are met and
	// silently falls back to full recomputation otherwise.
	ModeAuto Mode = iota
	// ModeDelta requires O(|delta|) maintenance; rule generation fails if
	// the needed indexes are missing.
	ModeDelta
	// ModeFull always rebuilds the view from its defining query — the
	// O(|base|) baseline the delta experiments compare against.
	ModeFull
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeDelta:
		return "delta"
	case ModeFull:
		return "full"
	default:
		return "unknown"
	}
}

// CountColumn is the support-count column delta maintenance adds to
// aggregation view schemas: the number of base rows contributing to the
// group, so group death (count reaching zero) is detectable from deltas
// alone.
const CountColumn = "vg_count"

// Spec is an analyzed view definition ready for materialization and rule
// generation.
type Spec struct {
	Name string
	Kind Kind

	// base is the rapidly-updating table; dim the (mostly static) join
	// dimension carrying the view's key.
	base, dim string
	// baseJoinCol / dimJoinCol are the equi-join columns.
	baseJoinCol, dimJoinCol string
	// keyCol is the view's key column (from dim, or dim's join key).
	keyCol *query.ColRef
	// valueExpr is the summed expression (Aggregation) or the function
	// call (PerRowFunction), referencing base and dim columns.
	valueExpr query.Expr
	valueName string
	// baseCols are base columns the value expression reads (part of the
	// rule's update-event column filter).
	baseCols []string
	// baseJoinKind is the base join column's type, needed to build the
	// per-row delta working-set table.
	baseJoinKind types.Kind

	def *query.Select
}

// Catalog is the subset of schema lookup viewgen needs.
type Catalog interface {
	Lookup(name string) (*catalog.Schema, bool)
}

// Analyze validates a view definition against the catalog and classifies
// it. The definition must join exactly two tables on one equality, select
// exactly [key, value], and (for Aggregation) group by the key.
func Analyze(cat Catalog, name string, def *query.Select) (*Spec, error) {
	if name == "" {
		return nil, fmt.Errorf("viewgen: view has no name")
	}
	if len(def.From) != 2 {
		return nil, fmt.Errorf("viewgen: view %s must join exactly two tables, got %d", name, len(def.From))
	}
	if len(def.Items) != 2 {
		return nil, fmt.Errorf("viewgen: view %s must select exactly [key, value]", name)
	}
	if def.Limit != 0 {
		// A LIMIT would make the maintained rows depend on scan order; the
		// incremental maintenance rules have no way to honor that.
		return nil, fmt.Errorf("viewgen: view %s cannot use LIMIT", name)
	}
	schemas := make([]*catalog.Schema, 2)
	for i, t := range def.From {
		s, ok := cat.Lookup(t)
		if !ok {
			return nil, fmt.Errorf("viewgen: view %s references unknown table %q", name, t)
		}
		schemas[i] = s
	}
	if len(def.Where) != 1 || def.Where[0].Op != query.EQ {
		return nil, fmt.Errorf("viewgen: view %s needs exactly one equi-join predicate", name)
	}
	lref, lok := def.Where[0].Left.(*query.ColRef)
	rref, rok := def.Where[0].Right.(*query.ColRef)
	if !lok || !rok {
		return nil, fmt.Errorf("viewgen: view %s join predicate must compare two columns", name)
	}

	sp := &Spec{Name: name, def: def}

	keyItem, valItem := def.Items[0], def.Items[1]
	keyRef, ok := keyItem.Expr.(*query.ColRef)
	if !ok || keyItem.Agg != query.AggNone {
		return nil, fmt.Errorf("viewgen: view %s first select item must be the key column", name)
	}
	sp.keyCol = keyRef

	switch {
	case valItem.Agg == query.AggSum:
		sp.Kind = Aggregation
		if len(def.GroupBy) != 1 || def.GroupBy[0].Col != keyRef.Col {
			return nil, fmt.Errorf("viewgen: view %s must GROUP BY its key column", name)
		}
	case valItem.Agg == query.AggNone:
		if _, isFn := valItem.Expr.(*query.FuncExpr); !isFn {
			return nil, fmt.Errorf("viewgen: view %s value must be sum(...) or a function call", name)
		}
		sp.Kind = PerRowFunction
		if len(def.GroupBy) != 0 {
			return nil, fmt.Errorf("viewgen: per-row view %s cannot GROUP BY", name)
		}
	default:
		return nil, fmt.Errorf("viewgen: view %s aggregate %v unsupported (only sum)", name, valItem.Agg)
	}
	sp.valueExpr = valItem.Expr
	sp.valueName = valItem.As
	if sp.valueName == "" {
		return nil, fmt.Errorf("viewgen: view %s value column needs an alias", name)
	}

	// Classify base vs dim: the key column belongs to the dimension; the
	// other table is the base whose updates drive maintenance.
	keyTable, err := ownerOf(keyRef, def.From, schemas)
	if err != nil {
		return nil, fmt.Errorf("viewgen: view %s: %w", name, err)
	}
	if keyTable == def.From[0] {
		sp.dim, sp.base = def.From[0], def.From[1]
	} else {
		sp.dim, sp.base = def.From[1], def.From[0]
	}

	// Orient the join predicate.
	lTable, err := ownerOf(lref, def.From, schemas)
	if err != nil {
		return nil, fmt.Errorf("viewgen: view %s: %w", name, err)
	}
	if lTable == sp.base {
		sp.baseJoinCol, sp.dimJoinCol = lref.Col, rref.Col
	} else {
		sp.baseJoinCol, sp.dimJoinCol = rref.Col, lref.Col
	}
	baseSchema := schemas[0]
	if sp.base == def.From[1] {
		baseSchema = schemas[1]
	}
	bj := baseSchema.ColIndex(sp.baseJoinCol)
	if bj < 0 {
		return nil, fmt.Errorf("viewgen: view %s: join column %q not in table %q", name, sp.baseJoinCol, sp.base)
	}
	sp.baseJoinKind = baseSchema.Col(bj).Kind

	// Canonicalize the value expression to fully qualified references and
	// collect the base columns it reads (the rule's update-event filter).
	// Qualification matters downstream: the generated condition query joins
	// `new` and `old`, which share the base schema, so unqualified base
	// references would turn ambiguous.
	seen := map[string]bool{}
	var ownErr error
	sp.valueExpr = query.RewriteRefs(sp.valueExpr, func(ref *query.ColRef) *query.ColRef {
		owner, err := ownerOf(ref, def.From, schemas)
		if err != nil {
			if ownErr == nil {
				ownErr = err
			}
			return ref
		}
		if owner == sp.base && !seen[ref.Col] {
			seen[ref.Col] = true
			sp.baseCols = append(sp.baseCols, ref.Col)
		}
		return query.QCol(owner, ref.Col)
	})
	if ownErr != nil {
		return nil, fmt.Errorf("viewgen: view %s: %w", name, ownErr)
	}
	if len(sp.baseCols) == 0 {
		return nil, fmt.Errorf("viewgen: view %s value expression reads no base columns", name)
	}
	return sp, nil
}

// ownerOf resolves which FROM table a reference belongs to.
func ownerOf(ref *query.ColRef, from []string, schemas []*catalog.Schema) (string, error) {
	if ref.Table != "" {
		for _, t := range from {
			if t == ref.Table {
				return t, nil
			}
		}
		return "", fmt.Errorf("column %s references a table outside FROM", ref)
	}
	owner := ""
	for i, s := range schemas {
		if s.HasCol(ref.Col) {
			if owner != "" {
				return "", fmt.Errorf("column %s is ambiguous", ref)
			}
			owner = from[i]
		}
	}
	if owner == "" {
		return "", fmt.Errorf("column %s not found", ref)
	}
	return owner, nil
}

// Base returns the base (rapidly updating) table.
func (sp *Spec) Base() string { return sp.base }

// Dim returns the dimension table.
func (sp *Spec) Dim() string { return sp.dim }

// KeyColumn returns the view's key column name.
func (sp *Spec) KeyColumn() string { return sp.keyCol.Col }

// ValueColumn returns the view's value column name.
func (sp *Spec) ValueColumn() string { return sp.valueName }

// ViewSchema returns the schema of the materialized table. Aggregation
// views carry a third support-count column (CountColumn) so delta
// maintenance can detect group death without consulting the base table.
func (sp *Spec) ViewSchema(cat Catalog) (*catalog.Schema, error) {
	dimSchema, ok := cat.Lookup(sp.dim)
	if !ok {
		return nil, fmt.Errorf("viewgen: dimension %q vanished", sp.dim)
	}
	keyKind := dimSchema.Col(dimSchema.ColIndex(sp.keyCol.Col)).Kind
	cols := []catalog.Column{
		{Name: sp.keyCol.Col, Kind: keyKind},
		{Name: sp.valueName, Kind: types.KindFloat},
	}
	if sp.Kind == Aggregation {
		cols = append(cols, catalog.Column{Name: CountColumn, Kind: types.KindInt})
	}
	return catalog.NewSchema(sp.Name, cols)
}

// LoadQuery returns the query that computes the view's full contents from
// the base tables: the canonicalized definition, extended (for aggregation
// views) with the support count. It feeds both initial materialization and
// the full-recompute maintenance path, so the two always agree on shape.
func (sp *Spec) LoadQuery() *query.Select {
	join := query.Eq(query.QCol(sp.base, sp.baseJoinCol), query.QCol(sp.dim, sp.dimJoinCol))
	key := query.QCol(sp.dim, sp.keyCol.Col)
	if sp.Kind == Aggregation {
		return &query.Select{
			Items: []query.SelectItem{
				query.Item(key, sp.keyCol.Col),
				query.AggItem(query.AggSum, sp.valueExpr, sp.valueName),
				query.AggItem(query.AggCount, query.Const(types.Int(1)), CountColumn),
			},
			From:    []string{sp.base, sp.dim},
			Where:   []query.Pred{join},
			GroupBy: []*query.ColRef{query.QCol(sp.dim, sp.keyCol.Col)},
		}
	}
	return &query.Select{
		Items: []query.SelectItem{
			query.Item(key, sp.keyCol.Col),
			query.Item(sp.valueExpr, sp.valueName),
		},
		From:  []string{sp.base, sp.dim},
		Where: []query.Pred{join},
	}
}

// Requirement names an index delta maintenance needs: the delta plans
// probe Table through an index on Col at every firing, so without it the
// per-firing cost degrades to a scan of Table.
type Requirement struct {
	Table, Col string
}

// DeltaRequirements lists the indexes delta maintenance needs for this
// view: the dimension's join column always (every transition leaf joins
// through it), plus — for per-row views — the base table's join column
// (the recompute joins the affected-key working set back to base rows).
func (sp *Spec) DeltaRequirements() []Requirement {
	reqs := []Requirement{{Table: sp.dim, Col: sp.dimJoinCol}}
	if sp.Kind == PerRowFunction {
		reqs = append(reqs, Requirement{Table: sp.base, Col: sp.baseJoinCol})
	}
	return reqs
}

// Stats carries the workload statistics the advisor consumes (the paper's
// §8: "by maintaining statistics such as join selectivities and how often
// tables are updated").
type Stats struct {
	// UpdateRate is base-table updates per second.
	UpdateRate float64
	// FanOut is the average number of view rows affected by one base
	// update (join selectivity × view size).
	FanOut float64
	// Groups is the number of distinct view keys.
	Groups int
	// MaxStaleness bounds how long the view may lag the base data.
	MaxStaleness clock.Micros
}

// Advice is the generated batching configuration.
type Advice struct {
	Unique   bool
	UniqueOn []string
	Delay    clock.Micros
	// Reason documents the choice for operators.
	Reason string
}

// Advise picks the unit of batching and the delay window.
//
// Unit of batching (paper §5 conclusions): "the unit of batching should be
// chosen to be just large enough to take advantage of the redundancy in
// the recomputation but no larger":
//
//   - Aggregation views gain from combining changes to the *same view
//     tuple* (read-modify-write once): batch per view key — the paper's
//     do_comps3 winner, which also keeps recompute transactions short.
//   - Per-row function views gain only from collapsing repeated changes of
//     the *same base row*: batch per base join key — the paper's §5.2
//     winner (batching per view row was unmanageable, coarser added
//     nothing but longer transactions).
//
// Delay window: "increasing the size of the delay window yields
// diminishing returns so a small window should be chosen to begin":
// pick the smallest window expected to batch ≈2 changes per unit
// (2 / per-unit touch rate), clamped to [100 ms, MaxStaleness].
func (sp *Spec) Advise(s Stats) Advice {
	adv := Advice{Unique: true}
	var touchRate float64
	if sp.Kind == Aggregation {
		adv.UniqueOn = []string{sp.keyCol.Col}
		if s.Groups > 0 {
			touchRate = s.UpdateRate * s.FanOut / float64(s.Groups)
		}
		adv.Reason = fmt.Sprintf(
			"aggregation view: batch per view key %q (combine changes to the same view tuple; short transactions)",
			sp.keyCol.Col)
	} else {
		adv.UniqueOn = []string{sp.dimJoinCol}
		touchRate = s.UpdateRate // per-base-key rate dominated by hot keys; window grows from the floor anyway
		if s.Groups > 0 {
			touchRate = s.UpdateRate / float64(s.Groups)
		}
		adv.Reason = fmt.Sprintf(
			"per-row function view: batch per base key %q (collapse repeated updates of the same base row)",
			sp.dimJoinCol)
	}

	const floor = 100 * 1000 // 100 ms
	delay := clock.Micros(0)
	if touchRate > 0 {
		delay = clock.Micros(2e6 / touchRate)
	}
	if delay < floor {
		delay = floor
	}
	if s.MaxStaleness > 0 && delay > s.MaxStaleness {
		delay = s.MaxStaleness
	}
	adv.Delay = delay
	return adv
}

// transition table names (mirroring core's reserved bind names).
const (
	transInserted = "inserted"
	transDeleted  = "deleted"
	transNew      = "new"
	transOld      = "old"
)

// MaintenanceRule generates the rule definition and the action function
// maintaining the materialized table, under the given advice and a
// *resolved* maintenance mode (ModeDelta or ModeFull — the caller resolves
// ModeAuto against DeltaRequirements before calling). actionName must be
// unique per view.
//
// Both modes trigger on inserts, deletes, and updates of the columns the
// view reads (value columns plus the join key, so re-keyed base rows
// re-maintain both their old and new groups). Both batch view-wide
// (Unique without UniqueOn): the delta rule binds raw transition tables,
// which carry the base join key in every leaf and therefore cannot be
// partitioned by the engine's unique-on splitter, and the full rule binds
// nothing at all. Coalesced firings merge their transition rows into the
// queued task; the merged rows are exactly the batch's delta.
func (sp *Spec) MaintenanceRule(actionName string, adv Advice, mode Mode) (*core.Rule, core.ActionFunc, error) {
	updateCols := append(append([]string{}, sp.baseCols...), sp.baseJoinCol)
	rule := &core.Rule{
		Name:  "maintain_" + sp.Name,
		Table: sp.base,
		Events: []core.EventSpec{
			{Kind: core.Inserted},
			{Kind: core.Deleted},
			{Kind: core.Updated, Columns: updateCols},
		},
		Action:      actionName,
		Unique:      adv.Unique,
		Delay:       adv.Delay,
		Maintenance: mode.String(),
	}
	switch mode {
	case ModeDelta:
		rule.BindTransitions = []string{transInserted, transDeleted, transNew, transOld}
		if sp.Kind == Aggregation {
			return rule, sp.deltaAggAction(), nil
		}
		return rule, sp.deltaPerRowAction(), nil
	case ModeFull:
		return rule, sp.fullRebuildAction(), nil
	default:
		return nil, nil, fmt.Errorf("viewgen: view %s: maintenance mode %s not resolved", sp.Name, mode)
	}
}

// retargetBase rewrites the canonicalized value expression's base-table
// references onto a transition table.
func (sp *Spec) retargetBase(trans string) query.Expr {
	return query.RewriteRefs(sp.valueExpr, func(c *query.ColRef) *query.ColRef {
		if c.Table == sp.base {
			return query.QCol(trans, c.Col)
		}
		return c
	})
}

// deltaLeaf is one transition table's contribution to an aggregation
// delta: inserted/new rows add support, deleted/old rows subtract it.
// Deletion of the old image plus insertion of the new one handles every
// update uniformly — including join-key churn, which moves support from
// one group to another.
type deltaLeaf struct {
	name string
	sign float64
	q    *query.Select
}

// aggLeaves builds the four per-leaf delta queries once, at rule
// generation time, so every firing reuses their cached plans: each scans
// one transition leaf and index-probes the dimension, grouping by view
// key — an O(|leaf|) operator tree.
func (sp *Spec) aggLeaves() []deltaLeaf {
	leaves := []deltaLeaf{
		{name: transInserted, sign: +1},
		{name: transNew, sign: +1},
		{name: transDeleted, sign: -1},
		{name: transOld, sign: -1},
	}
	for i := range leaves {
		l := &leaves[i]
		l.q = &query.Select{
			Items: []query.SelectItem{
				query.Item(query.QCol(sp.dim, sp.keyCol.Col), "vg_key"),
				query.AggItem(query.AggSum, sp.retargetBase(l.name), "vg_sum"),
				query.AggItem(query.AggCount, query.Const(types.Int(1)), "vg_n"),
			},
			From:    []string{l.name, sp.dim},
			Where:   []query.Pred{query.Eq(query.QCol(sp.dim, sp.dimJoinCol), query.QCol(l.name, sp.baseJoinCol))},
			GroupBy: []*query.ColRef{query.QCol(sp.dim, sp.keyCol.Col)},
		}
	}
	return leaves
}

// deltaAggAction maintains an aggregation view from its transition-table
// deltas: each leaf query yields per-group (sum, count) contributions,
// folded with sign into net group deltas and applied through the view's
// key index — O(|delta|) total, however large the base table is. Any
// consistency check tripping falls back to a full rebuild in the same
// transaction, so the view self-heals at the cost of one O(|base|) run.
func (sp *Spec) deltaAggAction() core.ActionFunc {
	view, keyCol, valCol := sp.Name, sp.keyCol.Col, sp.valueName
	leaves := sp.aggLeaves()
	rebuild := sp.rebuildFn()
	return func(ctx *core.ActionContext) error {
		model := ctx.Model()
		acc := map[types.Value]*query.AggDelta{}
		var order []types.Value
		var consumed int64
		for _, l := range leaves {
			tt, ok := ctx.Bound(l.name)
			if !ok {
				return fmt.Errorf("viewgen: view %s: transition table %q not bound", view, l.name)
			}
			if tt.Len() == 0 {
				continue
			}
			consumed += int64(tt.Len())
			out, err := ctx.Query(l.q)
			if err != nil {
				return err
			}
			for i := 0; i < out.Len(); i++ {
				ctx.Charge(model.UserGroupRow)
				k := out.Value(i, 0)
				d := acc[k]
				if d == nil {
					d = &query.AggDelta{Key: k}
					acc[k] = d
					order = append(order, k)
				}
				d.Sum += l.sign * out.Value(i, 1).Float()
				d.Count += int64(l.sign) * out.Value(i, 2).Int()
			}
			out.Retire()
		}
		deltas := make([]query.AggDelta, 0, len(order))
		for _, k := range order {
			deltas = append(deltas, *acc[k])
		}
		reg := ctx.Txn().Manager().Obs
		if _, err := query.ApplyAggDeltas(ctx.Txn(), view, keyCol, valCol, CountColumn, deltas); err != nil {
			if errors.Is(err, query.ErrDeltaInconsistent) {
				if reg != nil {
					reg.Counter(obs.MDeltaFallbacks).Inc()
				}
				return rebuild(ctx)
			}
			return err
		}
		if reg != nil {
			reg.Counter(obs.MDeltaApplied).Inc()
			reg.Counter(obs.MDeltaRows).Add(consumed)
		}
		return nil
	}
}

// affTable is the name the per-row recompute query knows the firing's
// affected-key working set by.
const affTable = "vg_aff"

// deltaPerRowAction maintains a per-row-function view from its transition
// tables: the affected base join keys (from every leaf) are projected into
// a working-set table, the view rows they produce are recomputed through
// index probes on base and dim, and keys whose base rows vanished or moved
// are deleted — O(|delta|) view rows touched per firing.
//
// The recompute assumes the base join key functionally determines the view
// row (one base row per key), which holds for the paper's option_prices
// workload; duplicate fresh keys resolve last-write-wins like the seed
// maintenance rule. Base rows are read under S locks (QueryLockedWith) so
// the recompute serializes with concurrent base writers instead of
// overwriting their updates from a stale snapshot.
func (sp *Spec) deltaPerRowAction() core.ActionFunc {
	view, keyCol, valCol := sp.Name, sp.keyCol.Col, sp.valueName
	names := []string{transInserted, transNew, transDeleted, transOld}
	// Keys of view rows that may have gone stale: groups the deleted/old
	// images pointed at. If the base row was merely updated in place the
	// recompute re-covers the key; if it was deleted or re-keyed, nothing
	// does, and the view row is removed.
	staleQs := make([]*query.Select, 0, 2)
	for _, n := range []string{transDeleted, transOld} {
		staleQs = append(staleQs, &query.Select{
			Items: []query.SelectItem{query.Item(query.QCol(sp.dim, sp.keyCol.Col), "vg_key")},
			From:  []string{n, sp.dim},
			Where: []query.Pred{query.Eq(query.QCol(sp.dim, sp.dimJoinCol), query.QCol(n, sp.baseJoinCol))},
		})
	}
	recompute := &query.Select{
		Items: []query.SelectItem{
			query.Item(query.QCol(sp.dim, sp.keyCol.Col), "vg_key"),
			query.Item(sp.valueExpr, "vg_val"),
		},
		From: []string{affTable, sp.base, sp.dim},
		Where: []query.Pred{
			query.Eq(query.QCol(sp.base, sp.baseJoinCol), query.QCol(affTable, "vg_base")),
			query.Eq(query.QCol(sp.dim, sp.dimJoinCol), query.QCol(sp.base, sp.baseJoinCol)),
		},
	}
	affSchema, affErr := catalog.NewSchema(affTable, []catalog.Column{{Name: "vg_base", Kind: sp.baseJoinKind}})
	rebuild := sp.rebuildFn()
	return func(ctx *core.ActionContext) error {
		if affErr != nil {
			return affErr
		}
		model := ctx.Model()
		aff := storage.NewValueTempTable(affSchema)
		defer aff.Retire()
		seen := map[types.Value]bool{}
		var consumed int64
		for _, n := range names {
			tt, ok := ctx.Bound(n)
			if !ok {
				return fmt.Errorf("viewgen: view %s: transition table %q not bound", view, n)
			}
			consumed += int64(tt.Len())
			ci := tt.Schema().ColIndex(sp.baseJoinCol)
			for i := 0; i < tt.Len(); i++ {
				ctx.Charge(model.UserGroupRow)
				k := tt.Value(i, ci)
				if seen[k] {
					continue
				}
				seen[k] = true
				if err := aff.AppendValues(k); err != nil {
					return err
				}
			}
		}
		if aff.Len() == 0 {
			return nil
		}
		var stale []types.Value
		staleSeen := map[types.Value]bool{}
		for _, q := range staleQs {
			out, err := ctx.Query(q)
			if err != nil {
				return err
			}
			for i := 0; i < out.Len(); i++ {
				k := out.Value(i, 0)
				if !staleSeen[k] {
					staleSeen[k] = true
					stale = append(stale, k)
				}
			}
			out.Retire()
		}
		out, err := ctx.QueryLockedWith(recompute, map[string]*storage.TempTable{affTable: aff})
		if err != nil {
			return err
		}
		last := map[types.Value]int{}
		var fresh []query.RowDelta
		for i := 0; i < out.Len(); i++ {
			ctx.Charge(model.UserGroupRow)
			k := out.Value(i, 0)
			if j, ok := last[k]; ok {
				fresh[j].Val = out.Value(i, 1)
				continue
			}
			last[k] = len(fresh)
			fresh = append(fresh, query.RowDelta{Key: k, Val: out.Value(i, 1)})
		}
		out.Retire()
		live := stale[:0]
		for _, k := range stale {
			if _, ok := last[k]; !ok {
				live = append(live, k)
			}
		}
		reg := ctx.Txn().Manager().Obs
		if _, err := query.ApplyRowDeltas(ctx.Txn(), view, keyCol, valCol, fresh, live); err != nil {
			if errors.Is(err, query.ErrDeltaInconsistent) {
				if reg != nil {
					reg.Counter(obs.MDeltaFallbacks).Inc()
				}
				return rebuild(ctx)
			}
			return err
		}
		if reg != nil {
			reg.Counter(obs.MDeltaApplied).Inc()
			reg.Counter(obs.MDeltaRows).Add(consumed)
		}
		return nil
	}
}

// rebuildFn returns the full-recompute body shared by the ModeFull action
// and the delta actions' consistency fallback: empty the view (the
// whole-table delete takes the table X lock first, serializing concurrent
// rebuilds), re-run the defining query under S locks so committed base
// state — not the action's begin snapshot — is what gets materialized,
// and reload the rows.
func (sp *Spec) rebuildFn() func(ctx *core.ActionContext) error {
	view := sp.Name
	load := sp.LoadQuery()
	return func(ctx *core.ActionContext) error {
		if _, err := ctx.ExecDelete(&query.DeleteStmt{Table: view}); err != nil {
			return err
		}
		out, err := ctx.QueryLocked(load)
		if err != nil {
			return err
		}
		defer out.Retire()
		model := ctx.Model()
		n := out.Schema().NumCols()
		rows := make([][]types.Value, 0, out.Len())
		for i := 0; i < out.Len(); i++ {
			ctx.Charge(model.UserGroupRow)
			row := make([]types.Value, n)
			for c := 0; c < n; c++ {
				row[c] = out.Value(i, c)
			}
			rows = append(rows, row)
		}
		if len(rows) == 0 {
			return nil
		}
		_, err = ctx.ExecInsert(&query.InsertStmt{Table: view, Rows: rows})
		return err
	}
}

// fullRebuildAction is the ModeFull maintenance action: every firing
// rebuilds the view wholesale — the O(|base|) baseline.
func (sp *Spec) fullRebuildAction() core.ActionFunc {
	rebuild := sp.rebuildFn()
	return func(ctx *core.ActionContext) error { return rebuild(ctx) }
}
