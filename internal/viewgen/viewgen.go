// Package viewgen generates derived-data maintenance rules from
// materialized view definitions — the paper's §8 future-work direction:
// "it should be possible for a materialized view manager to derive not
// just the rules to maintain a view but the unit of batching and delay
// window size as well", building on Ceri & Widom's automatic rule
// derivation [CW91].
//
// Two view shapes are supported, matching the paper's two experiment
// classes:
//
//   - aggregation views  SELECT g, sum(expr) FROM base, dim WHERE
//     dim.k = base.k GROUP BY g  (comp_prices-like; maintained
//     incrementally from per-row deltas), and
//   - per-row function views  SELECT d, f(args...) FROM base, dim WHERE
//     dim.k = base.k  (option_prices-like; recomputed per affected row).
//
// Given the view definition and workload statistics, Advise picks the unit
// of batching and delay window by the paper's two rules of thumb (§8):
// the unit should be "just large enough to take advantage of the
// redundancy in the recomputation but no larger", and the window should
// start small and grow only if load demands it.
package viewgen

import (
	"fmt"

	"github.com/stripdb/strip/internal/catalog"
	"github.com/stripdb/strip/internal/clock"
	"github.com/stripdb/strip/internal/core"
	"github.com/stripdb/strip/internal/query"
	"github.com/stripdb/strip/internal/types"
)

// Kind classifies a supported view shape.
type Kind uint8

// View shapes.
const (
	// Aggregation is a grouped sum over a join (incremental maintenance).
	Aggregation Kind = iota
	// PerRowFunction computes a scalar function per join row
	// (non-incremental maintenance).
	PerRowFunction
)

// Spec is an analyzed view definition ready for materialization and rule
// generation.
type Spec struct {
	Name string
	Kind Kind

	// base is the rapidly-updating table; dim the (mostly static) join
	// dimension carrying the view's key.
	base, dim string
	// baseJoinCol / dimJoinCol are the equi-join columns.
	baseJoinCol, dimJoinCol string
	// keyCol is the view's key column (from dim, or dim's join key).
	keyCol *query.ColRef
	// valueExpr is the summed expression (Aggregation) or the function
	// call (PerRowFunction), referencing base and dim columns.
	valueExpr query.Expr
	valueName string
	// baseCols are base columns the value expression reads (the rule's
	// update-event column filter).
	baseCols []string

	def *query.Select
}

// Catalog is the subset of schema lookup viewgen needs.
type Catalog interface {
	Lookup(name string) (*catalog.Schema, bool)
}

// Analyze validates a view definition against the catalog and classifies
// it. The definition must join exactly two tables on one equality, select
// exactly [key, value], and (for Aggregation) group by the key.
func Analyze(cat Catalog, name string, def *query.Select) (*Spec, error) {
	if name == "" {
		return nil, fmt.Errorf("viewgen: view has no name")
	}
	if len(def.From) != 2 {
		return nil, fmt.Errorf("viewgen: view %s must join exactly two tables, got %d", name, len(def.From))
	}
	if len(def.Items) != 2 {
		return nil, fmt.Errorf("viewgen: view %s must select exactly [key, value]", name)
	}
	if def.Limit != 0 {
		// A LIMIT would make the maintained rows depend on scan order; the
		// incremental maintenance rules have no way to honor that.
		return nil, fmt.Errorf("viewgen: view %s cannot use LIMIT", name)
	}
	schemas := make([]*catalog.Schema, 2)
	for i, t := range def.From {
		s, ok := cat.Lookup(t)
		if !ok {
			return nil, fmt.Errorf("viewgen: view %s references unknown table %q", name, t)
		}
		schemas[i] = s
	}
	if len(def.Where) != 1 || def.Where[0].Op != query.EQ {
		return nil, fmt.Errorf("viewgen: view %s needs exactly one equi-join predicate", name)
	}
	lref, lok := def.Where[0].Left.(*query.ColRef)
	rref, rok := def.Where[0].Right.(*query.ColRef)
	if !lok || !rok {
		return nil, fmt.Errorf("viewgen: view %s join predicate must compare two columns", name)
	}

	sp := &Spec{Name: name, def: def}

	keyItem, valItem := def.Items[0], def.Items[1]
	keyRef, ok := keyItem.Expr.(*query.ColRef)
	if !ok || keyItem.Agg != query.AggNone {
		return nil, fmt.Errorf("viewgen: view %s first select item must be the key column", name)
	}
	sp.keyCol = keyRef

	switch {
	case valItem.Agg == query.AggSum:
		sp.Kind = Aggregation
		if len(def.GroupBy) != 1 || def.GroupBy[0].Col != keyRef.Col {
			return nil, fmt.Errorf("viewgen: view %s must GROUP BY its key column", name)
		}
	case valItem.Agg == query.AggNone:
		if _, isFn := valItem.Expr.(*query.FuncExpr); !isFn {
			return nil, fmt.Errorf("viewgen: view %s value must be sum(...) or a function call", name)
		}
		sp.Kind = PerRowFunction
		if len(def.GroupBy) != 0 {
			return nil, fmt.Errorf("viewgen: per-row view %s cannot GROUP BY", name)
		}
	default:
		return nil, fmt.Errorf("viewgen: view %s aggregate %v unsupported (only sum)", name, valItem.Agg)
	}
	sp.valueExpr = valItem.Expr
	sp.valueName = valItem.As
	if sp.valueName == "" {
		return nil, fmt.Errorf("viewgen: view %s value column needs an alias", name)
	}

	// Classify base vs dim: the key column belongs to the dimension; the
	// other table is the base whose updates drive maintenance.
	keyTable, err := ownerOf(keyRef, def.From, schemas)
	if err != nil {
		return nil, fmt.Errorf("viewgen: view %s: %w", name, err)
	}
	if keyTable == def.From[0] {
		sp.dim, sp.base = def.From[0], def.From[1]
	} else {
		sp.dim, sp.base = def.From[1], def.From[0]
	}

	// Orient the join predicate.
	lTable, err := ownerOf(lref, def.From, schemas)
	if err != nil {
		return nil, fmt.Errorf("viewgen: view %s: %w", name, err)
	}
	if lTable == sp.base {
		sp.baseJoinCol, sp.dimJoinCol = lref.Col, rref.Col
	} else {
		sp.baseJoinCol, sp.dimJoinCol = rref.Col, lref.Col
	}

	// Canonicalize the value expression to fully qualified references and
	// collect the base columns it reads (the rule's update-event filter).
	// Qualification matters downstream: the generated condition query joins
	// `new` and `old`, which share the base schema, so unqualified base
	// references would turn ambiguous.
	seen := map[string]bool{}
	var ownErr error
	sp.valueExpr = query.RewriteRefs(sp.valueExpr, func(ref *query.ColRef) *query.ColRef {
		owner, err := ownerOf(ref, def.From, schemas)
		if err != nil {
			if ownErr == nil {
				ownErr = err
			}
			return ref
		}
		if owner == sp.base && !seen[ref.Col] {
			seen[ref.Col] = true
			sp.baseCols = append(sp.baseCols, ref.Col)
		}
		return query.QCol(owner, ref.Col)
	})
	if ownErr != nil {
		return nil, fmt.Errorf("viewgen: view %s: %w", name, ownErr)
	}
	if len(sp.baseCols) == 0 {
		return nil, fmt.Errorf("viewgen: view %s value expression reads no base columns", name)
	}
	return sp, nil
}

// ownerOf resolves which FROM table a reference belongs to.
func ownerOf(ref *query.ColRef, from []string, schemas []*catalog.Schema) (string, error) {
	if ref.Table != "" {
		for _, t := range from {
			if t == ref.Table {
				return t, nil
			}
		}
		return "", fmt.Errorf("column %s references a table outside FROM", ref)
	}
	owner := ""
	for i, s := range schemas {
		if s.HasCol(ref.Col) {
			if owner != "" {
				return "", fmt.Errorf("column %s is ambiguous", ref)
			}
			owner = from[i]
		}
	}
	if owner == "" {
		return "", fmt.Errorf("column %s not found", ref)
	}
	return owner, nil
}

// Base returns the base (rapidly updating) table.
func (sp *Spec) Base() string { return sp.base }

// Dim returns the dimension table.
func (sp *Spec) Dim() string { return sp.dim }

// KeyColumn returns the view's key column name.
func (sp *Spec) KeyColumn() string { return sp.keyCol.Col }

// ValueColumn returns the view's value column name.
func (sp *Spec) ValueColumn() string { return sp.valueName }

// ViewSchema returns the schema of the materialized table.
func (sp *Spec) ViewSchema(cat Catalog) (*catalog.Schema, error) {
	dimSchema, ok := cat.Lookup(sp.dim)
	if !ok {
		return nil, fmt.Errorf("viewgen: dimension %q vanished", sp.dim)
	}
	keyKind := dimSchema.Col(dimSchema.ColIndex(sp.keyCol.Col)).Kind
	return catalog.NewSchema(sp.Name, []catalog.Column{
		{Name: sp.keyCol.Col, Kind: keyKind},
		{Name: sp.valueName, Kind: types.KindFloat},
	})
}

// Stats carries the workload statistics the advisor consumes (the paper's
// §8: "by maintaining statistics such as join selectivities and how often
// tables are updated").
type Stats struct {
	// UpdateRate is base-table updates per second.
	UpdateRate float64
	// FanOut is the average number of view rows affected by one base
	// update (join selectivity × view size).
	FanOut float64
	// Groups is the number of distinct view keys.
	Groups int
	// MaxStaleness bounds how long the view may lag the base data.
	MaxStaleness clock.Micros
}

// Advice is the generated batching configuration.
type Advice struct {
	Unique   bool
	UniqueOn []string
	Delay    clock.Micros
	// Reason documents the choice for operators.
	Reason string
}

// Advise picks the unit of batching and the delay window.
//
// Unit of batching (paper §5 conclusions): "the unit of batching should be
// chosen to be just large enough to take advantage of the redundancy in
// the recomputation but no larger":
//
//   - Aggregation views gain from combining changes to the *same view
//     tuple* (read-modify-write once): batch per view key — the paper's
//     do_comps3 winner, which also keeps recompute transactions short.
//   - Per-row function views gain only from collapsing repeated changes of
//     the *same base row*: batch per base join key — the paper's §5.2
//     winner (batching per view row was unmanageable, coarser added
//     nothing but longer transactions).
//
// Delay window: "increasing the size of the delay window yields
// diminishing returns so a small window should be chosen to begin":
// pick the smallest window expected to batch ≈2 changes per unit
// (2 / per-unit touch rate), clamped to [100 ms, MaxStaleness].
func (sp *Spec) Advise(s Stats) Advice {
	adv := Advice{Unique: true}
	var touchRate float64
	if sp.Kind == Aggregation {
		adv.UniqueOn = []string{sp.keyCol.Col}
		if s.Groups > 0 {
			touchRate = s.UpdateRate * s.FanOut / float64(s.Groups)
		}
		adv.Reason = fmt.Sprintf(
			"aggregation view: batch per view key %q (combine changes to the same view tuple; short transactions)",
			sp.keyCol.Col)
	} else {
		adv.UniqueOn = []string{sp.dimJoinCol}
		touchRate = s.UpdateRate // per-base-key rate dominated by hot keys; window grows from the floor anyway
		if s.Groups > 0 {
			touchRate = s.UpdateRate / float64(s.Groups)
		}
		adv.Reason = fmt.Sprintf(
			"per-row function view: batch per base key %q (collapse repeated updates of the same base row)",
			sp.dimJoinCol)
	}

	const floor = 100 * 1000 // 100 ms
	delay := clock.Micros(0)
	if touchRate > 0 {
		delay = clock.Micros(2e6 / touchRate)
	}
	if delay < floor {
		delay = floor
	}
	if s.MaxStaleness > 0 && delay > s.MaxStaleness {
		delay = s.MaxStaleness
	}
	adv.Delay = delay
	return adv
}

// MaintenanceRule generates the rule definition and the action function
// maintaining the materialized table, under the given advice. actionName
// must be unique per view.
func (sp *Spec) MaintenanceRule(actionName string, adv Advice) (*core.Rule, core.ActionFunc, error) {
	rule := &core.Rule{
		Name:   "maintain_" + sp.Name,
		Table:  sp.base,
		Events: []core.EventSpec{{Kind: core.Updated, Columns: sp.baseCols}},
		Action: actionName,
		Unique: adv.Unique,
		Delay:  adv.Delay,
	}
	// Advice names logical columns; the bound table aliases them.
	for _, col := range adv.UniqueOn {
		switch col {
		case sp.keyCol.Col:
			rule.UniqueOn = append(rule.UniqueOn, "vg_key")
		case sp.dimJoinCol:
			rule.UniqueOn = append(rule.UniqueOn, "vg_base")
		default:
			return nil, nil, fmt.Errorf("viewgen: advice names unknown column %q", col)
		}
	}
	cond, err := sp.conditionQuery()
	if err != nil {
		return nil, nil, err
	}
	rule.Condition = []*query.Select{cond}
	var fn core.ActionFunc
	if sp.Kind == Aggregation {
		fn = sp.incrementalAction()
	} else {
		fn = sp.perRowAction()
	}
	return rule, fn, nil
}

// conditionQuery builds the bind-as query joining the transition tables
// with the dimension. For aggregation views it emits (key, delta) rows with
// delta = expr(new) − expr(old); for per-row views it emits
// (key, new-value) rows.
func (sp *Spec) conditionQuery() (*query.Select, error) {
	// The value expression is fully qualified (Analyze canonicalized it);
	// retarget base references to the requested transition table.
	renameTo := func(trans string) func(*query.ColRef) *query.ColRef {
		return func(c *query.ColRef) *query.ColRef {
			if c.Table == sp.base {
				return query.QCol(trans, c.Col)
			}
			return c
		}
	}
	newExpr := query.RewriteRefs(sp.valueExpr, renameTo("new"))
	key := query.QCol(sp.dim, sp.keyCol.Col)

	q := &query.Select{
		From: []string{"new", "old", sp.dim},
		Where: []query.Pred{
			query.Eq(query.QCol(sp.dim, sp.dimJoinCol), query.QCol("new", sp.baseJoinCol)),
			query.Eq(query.QCol("new", "execute_order"), query.QCol("old", "execute_order")),
		},
		Bind: "vg_changes",
	}
	if sp.Kind == Aggregation {
		oldExpr := query.RewriteRefs(sp.valueExpr, renameTo("old"))
		q.Items = []query.SelectItem{
			query.Item(key, "vg_key"),
			query.Item(query.Arith(newExpr, '-', oldExpr), "vg_delta"),
		}
		return q, nil
	}
	q.Items = []query.SelectItem{
		query.Item(key, "vg_key"),
		query.Item(newExpr, "vg_value"),
		// The base join key, bound so `unique on` can batch per base row.
		query.Item(query.QCol("new", sp.baseJoinCol), "vg_base"),
	}
	return q, nil
}

// incrementalAction folds per-row deltas per key and applies each with one
// incremental update (the generated analogue of compute_comps3/2).
func (sp *Spec) incrementalAction() core.ActionFunc {
	view, keyCol, valCol := sp.Name, sp.keyCol.Col, sp.valueName
	return func(ctx *core.ActionContext) error {
		rows, ok := ctx.Bound("vg_changes")
		if !ok {
			return fmt.Errorf("viewgen: bound table vg_changes missing")
		}
		model := ctx.Model()
		deltas := map[types.Value]float64{}
		var order []types.Value
		for i := 0; i < rows.Len(); i++ {
			ctx.Charge(model.UserGroupRow)
			k := rows.Value(i, 0)
			if _, seen := deltas[k]; !seen {
				order = append(order, k)
			}
			deltas[k] += rows.Value(i, 1).Float()
		}
		for _, k := range order {
			if _, err := ctx.ExecUpdate(&query.UpdateStmt{
				Table: view,
				Set:   []query.SetClause{{Col: valCol, Expr: query.Const(types.Float(deltas[k])), AddTo: true}},
				Where: []query.Pred{query.Eq(query.Col(keyCol), query.Const(k))},
			}); err != nil {
				return err
			}
		}
		return nil
	}
}

// perRowAction rewrites each affected view row from its last batched value.
func (sp *Spec) perRowAction() core.ActionFunc {
	view, keyCol, valCol := sp.Name, sp.keyCol.Col, sp.valueName
	return func(ctx *core.ActionContext) error {
		rows, ok := ctx.Bound("vg_changes")
		if !ok {
			return fmt.Errorf("viewgen: bound table vg_changes missing")
		}
		model := ctx.Model()
		last := map[types.Value]types.Value{}
		var order []types.Value
		for i := 0; i < rows.Len(); i++ {
			ctx.Charge(model.UserGroupRow)
			k := rows.Value(i, 0)
			if _, seen := last[k]; !seen {
				order = append(order, k)
			}
			last[k] = rows.Value(i, 1)
		}
		for _, k := range order {
			if _, err := ctx.ExecUpdate(&query.UpdateStmt{
				Table: view,
				Set:   []query.SetClause{{Col: valCol, Expr: query.Const(last[k])}},
				Where: []query.Pred{query.Eq(query.Col(keyCol), query.Const(k))},
			}); err != nil {
				return err
			}
		}
		return nil
	}
}
