package viewgen

import (
	"strings"
	"testing"

	"github.com/stripdb/strip/internal/catalog"
	"github.com/stripdb/strip/internal/clock"
	"github.com/stripdb/strip/internal/query"
	"github.com/stripdb/strip/internal/types"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	for _, s := range []*catalog.Schema{
		catalog.MustSchema("stocks",
			catalog.Column{Name: "symbol", Kind: types.KindString},
			catalog.Column{Name: "price", Kind: types.KindFloat}),
		catalog.MustSchema("comps_list",
			catalog.Column{Name: "comp", Kind: types.KindString},
			catalog.Column{Name: "symbol", Kind: types.KindString},
			catalog.Column{Name: "weight", Kind: types.KindFloat}),
		catalog.MustSchema("options_list",
			catalog.Column{Name: "option_symbol", Kind: types.KindString},
			catalog.Column{Name: "stock_symbol", Kind: types.KindString},
			catalog.Column{Name: "strike", Kind: types.KindFloat}),
	} {
		if err := cat.Define(s); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

// compPricesDef is the paper's comp_prices view definition (§3):
// select comp, sum(price*weight) as price from stocks, comps_list
// where stocks.symbol = comps_list.symbol group by comp.
func compPricesDef() *query.Select {
	comp := query.QCol("comps_list", "comp")
	return &query.Select{
		Items: []query.SelectItem{
			query.Item(comp, ""),
			query.AggItem(query.AggSum,
				query.Arith(query.QCol("stocks", "price"), '*', query.QCol("comps_list", "weight")),
				"price"),
		},
		From:    []string{"stocks", "comps_list"},
		Where:   []query.Pred{query.Eq(query.QCol("stocks", "symbol"), query.QCol("comps_list", "symbol"))},
		GroupBy: []*query.ColRef{comp},
	}
}

// optionPricesDef is the option_prices view shape:
// select option_symbol, f(price, strike) as price from stocks, options_list
// where stocks.symbol = options_list.stock_symbol.
func optionPricesDef() *query.Select {
	return &query.Select{
		Items: []query.SelectItem{
			query.Item(query.QCol("options_list", "option_symbol"), ""),
			query.Item(query.Call("test_price", query.QCol("stocks", "price"), query.QCol("options_list", "strike")), "price"),
		},
		From:  []string{"stocks", "options_list"},
		Where: []query.Pred{query.Eq(query.QCol("stocks", "symbol"), query.QCol("options_list", "stock_symbol"))},
	}
}

func TestAnalyzeAggregation(t *testing.T) {
	cat := testCatalog(t)
	sp, err := Analyze(cat, "comp_prices", compPricesDef())
	if err != nil {
		t.Fatal(err)
	}
	if sp.Kind != Aggregation {
		t.Errorf("kind = %v", sp.Kind)
	}
	if sp.Base() != "stocks" || sp.Dim() != "comps_list" {
		t.Errorf("base/dim = %s/%s", sp.Base(), sp.Dim())
	}
	if sp.KeyColumn() != "comp" || sp.ValueColumn() != "price" {
		t.Errorf("key/value = %s/%s", sp.KeyColumn(), sp.ValueColumn())
	}
	if len(sp.baseCols) != 1 || sp.baseCols[0] != "price" {
		t.Errorf("baseCols = %v", sp.baseCols)
	}
	schema, err := sp.ViewSchema(cat)
	if err != nil {
		t.Fatal(err)
	}
	if schema.NumCols() != 3 || schema.Col(0).Name != "comp" || schema.Col(1).Kind != types.KindFloat {
		t.Errorf("view schema wrong: %v", schema.Columns())
	}
	if schema.Col(2).Name != CountColumn || schema.Col(2).Kind != types.KindInt {
		t.Errorf("support-count column wrong: %v", schema.Columns())
	}
}

func TestAnalyzePerRowFunction(t *testing.T) {
	query.RegisterFunc("test_price", func(args []types.Value) (types.Value, error) {
		return types.Float(args[0].Float() - args[1].Float()), nil
	})
	cat := testCatalog(t)
	sp, err := Analyze(cat, "option_prices", optionPricesDef())
	if err != nil {
		t.Fatal(err)
	}
	if sp.Kind != PerRowFunction {
		t.Errorf("kind = %v", sp.Kind)
	}
	if sp.Base() != "stocks" || sp.Dim() != "options_list" {
		t.Errorf("base/dim = %s/%s", sp.Base(), sp.Dim())
	}
	if sp.dimJoinCol != "stock_symbol" || sp.baseJoinCol != "symbol" {
		t.Errorf("join cols = %s/%s", sp.dimJoinCol, sp.baseJoinCol)
	}
}

func TestAnalyzeRejections(t *testing.T) {
	cat := testCatalog(t)
	base := compPricesDef
	cases := []struct {
		name string
		mod  func(*query.Select)
		view string
	}{
		{"no name", func(q *query.Select) {}, ""},
		{"three tables", func(q *query.Select) { q.From = append(q.From, "options_list") }, "v"},
		{"one item", func(q *query.Select) { q.Items = q.Items[:1] }, "v"},
		{"unknown table", func(q *query.Select) { q.From[0] = "missing" }, "v"},
		{"no join", func(q *query.Select) { q.Where = nil }, "v"},
		{"non-eq join", func(q *query.Select) { q.Where[0].Op = query.LT }, "v"},
		{"group mismatch", func(q *query.Select) { q.GroupBy = []*query.ColRef{query.QCol("comps_list", "weight")} }, "v"},
		{"avg agg", func(q *query.Select) { q.Items[1].Agg = query.AggAvg }, "v"},
		{"no alias", func(q *query.Select) { q.Items[1].As = "" }, "v"},
		{"key not colref", func(q *query.Select) {
			q.Items[0] = query.Item(query.Arith(query.QCol("comps_list", "weight"), '+', query.Const(types.Int(1))), "k")
		}, "v"},
	}
	for _, tc := range cases {
		q := base()
		tc.mod(q)
		if _, err := Analyze(cat, tc.view, q); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	// Plain column value (no agg, no function).
	q := base()
	q.GroupBy = nil
	q.Items[1] = query.Item(query.QCol("comps_list", "weight"), "w")
	if _, err := Analyze(cat, "v", q); err == nil {
		t.Error("plain column value accepted")
	}
}

func TestAdviseAggregation(t *testing.T) {
	cat := testCatalog(t)
	sp, err := Analyze(cat, "comp_prices", compPricesDef())
	if err != nil {
		t.Fatal(err)
	}
	// Paper-scale stats: 33 upd/s × 12 fan-out over 400 groups = 1 touch/s
	// per composite; expect ≈2 s window, unique on comp.
	adv := sp.Advise(Stats{UpdateRate: 33, FanOut: 12, Groups: 400, MaxStaleness: clock.FromSeconds(3)})
	if !adv.Unique || len(adv.UniqueOn) != 1 || adv.UniqueOn[0] != "comp" {
		t.Errorf("advice = %+v", adv)
	}
	if adv.Delay < clock.FromSeconds(1.5) || adv.Delay > clock.FromSeconds(3) {
		t.Errorf("delay = %.2fs, want ≈2s", float64(adv.Delay)/1e6)
	}
	if !strings.Contains(adv.Reason, "view key") {
		t.Errorf("reason = %q", adv.Reason)
	}
	// Staleness clamp.
	adv = sp.Advise(Stats{UpdateRate: 1, FanOut: 1, Groups: 1000, MaxStaleness: clock.FromSeconds(1)})
	if adv.Delay != clock.FromSeconds(1) {
		t.Errorf("unclamped delay %d", adv.Delay)
	}
	// Floor.
	adv = sp.Advise(Stats{UpdateRate: 1e6, FanOut: 100, Groups: 10, MaxStaleness: clock.FromSeconds(3)})
	if adv.Delay != 100_000 {
		t.Errorf("floor delay = %d", adv.Delay)
	}
}

func TestAdvisePerRow(t *testing.T) {
	cat := testCatalog(t)
	sp, err := Analyze(cat, "option_prices", optionPricesDef())
	if err != nil {
		t.Fatal(err)
	}
	adv := sp.Advise(Stats{UpdateRate: 33, FanOut: 8, Groups: 6600, MaxStaleness: clock.FromSeconds(3)})
	if len(adv.UniqueOn) != 1 || adv.UniqueOn[0] != "stock_symbol" {
		t.Errorf("advice = %+v (should batch per base key)", adv)
	}
	if !strings.Contains(adv.Reason, "base key") {
		t.Errorf("reason = %q", adv.Reason)
	}
}

func TestMaintenanceRuleShape(t *testing.T) {
	cat := testCatalog(t)
	sp, err := Analyze(cat, "comp_prices", compPricesDef())
	if err != nil {
		t.Fatal(err)
	}
	adv := sp.Advise(Stats{UpdateRate: 33, FanOut: 12, Groups: 400, MaxStaleness: clock.FromSeconds(3)})

	rule, fn, err := sp.MaintenanceRule("maintain_cp", adv, ModeDelta)
	if err != nil {
		t.Fatal(err)
	}
	if fn == nil {
		t.Fatal("nil action")
	}
	if rule.Table != "stocks" || rule.Name != "maintain_comp_prices" {
		t.Errorf("rule = %+v", rule)
	}
	// Delta maintenance must see inserts, deletes, and updates of the value
	// columns plus the join key (re-keyed rows move group support).
	if len(rule.Events) != 3 {
		t.Fatalf("events = %+v", rule.Events)
	}
	kinds := map[string][]string{}
	for _, e := range rule.Events {
		kinds[e.Kind.String()] = e.Columns
	}
	if _, ok := kinds["inserted"]; !ok {
		t.Errorf("no inserted event: %+v", rule.Events)
	}
	if _, ok := kinds["deleted"]; !ok {
		t.Errorf("no deleted event: %+v", rule.Events)
	}
	upd := kinds["updated"]
	if len(upd) != 2 || upd[0] != "price" || upd[1] != "symbol" {
		t.Errorf("updated columns = %v, want [price symbol]", upd)
	}
	if len(rule.BindTransitions) != 4 {
		t.Errorf("bind transitions = %v", rule.BindTransitions)
	}
	if !rule.Unique || len(rule.UniqueOn) != 0 {
		t.Errorf("unique = %v %v (want view-wide batching)", rule.Unique, rule.UniqueOn)
	}
	if rule.Maintenance != "delta" {
		t.Errorf("maintenance = %q", rule.Maintenance)
	}

	full, ffn, err := sp.MaintenanceRule("maintain_cp", adv, ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	if ffn == nil {
		t.Fatal("nil full action")
	}
	if len(full.BindTransitions) != 0 || len(full.Condition) != 0 {
		t.Errorf("full rule binds data it never reads: %+v", full)
	}
	if full.Maintenance != "full" {
		t.Errorf("maintenance = %q", full.Maintenance)
	}

	if _, _, err := sp.MaintenanceRule("maintain_cp", adv, ModeAuto); err == nil {
		t.Error("unresolved ModeAuto accepted")
	}
}

func TestDeltaRequirements(t *testing.T) {
	cat := testCatalog(t)
	agg, err := Analyze(cat, "comp_prices", compPricesDef())
	if err != nil {
		t.Fatal(err)
	}
	reqs := agg.DeltaRequirements()
	if len(reqs) != 1 || reqs[0] != (Requirement{Table: "comps_list", Col: "symbol"}) {
		t.Errorf("aggregation requirements = %v", reqs)
	}
	pr, err := Analyze(cat, "option_prices", optionPricesDef())
	if err != nil {
		t.Fatal(err)
	}
	reqs = pr.DeltaRequirements()
	if len(reqs) != 2 || reqs[0] != (Requirement{Table: "options_list", Col: "stock_symbol"}) ||
		reqs[1] != (Requirement{Table: "stocks", Col: "symbol"}) {
		t.Errorf("per-row requirements = %v", reqs)
	}
}

func TestLoadQueryShape(t *testing.T) {
	cat := testCatalog(t)
	sp, err := Analyze(cat, "comp_prices", compPricesDef())
	if err != nil {
		t.Fatal(err)
	}
	q := sp.LoadQuery()
	if len(q.Items) != 3 || q.Items[2].As != CountColumn || q.Items[2].Agg != query.AggCount {
		t.Errorf("aggregation load query items = %+v", q.Items)
	}
	if len(q.GroupBy) != 1 {
		t.Errorf("load query GroupBy = %v", q.GroupBy)
	}
	pr, err := Analyze(cat, "option_prices", optionPricesDef())
	if err != nil {
		t.Fatal(err)
	}
	q = pr.LoadQuery()
	if len(q.Items) != 2 || len(q.GroupBy) != 0 {
		t.Errorf("per-row load query = %+v", q)
	}
}
