package viewgen

import (
	"strings"
	"testing"

	"github.com/stripdb/strip/internal/catalog"
	"github.com/stripdb/strip/internal/clock"
	"github.com/stripdb/strip/internal/query"
	"github.com/stripdb/strip/internal/types"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	for _, s := range []*catalog.Schema{
		catalog.MustSchema("stocks",
			catalog.Column{Name: "symbol", Kind: types.KindString},
			catalog.Column{Name: "price", Kind: types.KindFloat}),
		catalog.MustSchema("comps_list",
			catalog.Column{Name: "comp", Kind: types.KindString},
			catalog.Column{Name: "symbol", Kind: types.KindString},
			catalog.Column{Name: "weight", Kind: types.KindFloat}),
		catalog.MustSchema("options_list",
			catalog.Column{Name: "option_symbol", Kind: types.KindString},
			catalog.Column{Name: "stock_symbol", Kind: types.KindString},
			catalog.Column{Name: "strike", Kind: types.KindFloat}),
	} {
		if err := cat.Define(s); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

// compPricesDef is the paper's comp_prices view definition (§3):
// select comp, sum(price*weight) as price from stocks, comps_list
// where stocks.symbol = comps_list.symbol group by comp.
func compPricesDef() *query.Select {
	comp := query.QCol("comps_list", "comp")
	return &query.Select{
		Items: []query.SelectItem{
			query.Item(comp, ""),
			query.AggItem(query.AggSum,
				query.Arith(query.QCol("stocks", "price"), '*', query.QCol("comps_list", "weight")),
				"price"),
		},
		From:    []string{"stocks", "comps_list"},
		Where:   []query.Pred{query.Eq(query.QCol("stocks", "symbol"), query.QCol("comps_list", "symbol"))},
		GroupBy: []*query.ColRef{comp},
	}
}

// optionPricesDef is the option_prices view shape:
// select option_symbol, f(price, strike) as price from stocks, options_list
// where stocks.symbol = options_list.stock_symbol.
func optionPricesDef() *query.Select {
	return &query.Select{
		Items: []query.SelectItem{
			query.Item(query.QCol("options_list", "option_symbol"), ""),
			query.Item(query.Call("test_price", query.QCol("stocks", "price"), query.QCol("options_list", "strike")), "price"),
		},
		From:  []string{"stocks", "options_list"},
		Where: []query.Pred{query.Eq(query.QCol("stocks", "symbol"), query.QCol("options_list", "stock_symbol"))},
	}
}

func TestAnalyzeAggregation(t *testing.T) {
	cat := testCatalog(t)
	sp, err := Analyze(cat, "comp_prices", compPricesDef())
	if err != nil {
		t.Fatal(err)
	}
	if sp.Kind != Aggregation {
		t.Errorf("kind = %v", sp.Kind)
	}
	if sp.Base() != "stocks" || sp.Dim() != "comps_list" {
		t.Errorf("base/dim = %s/%s", sp.Base(), sp.Dim())
	}
	if sp.KeyColumn() != "comp" || sp.ValueColumn() != "price" {
		t.Errorf("key/value = %s/%s", sp.KeyColumn(), sp.ValueColumn())
	}
	if len(sp.baseCols) != 1 || sp.baseCols[0] != "price" {
		t.Errorf("baseCols = %v", sp.baseCols)
	}
	schema, err := sp.ViewSchema(cat)
	if err != nil {
		t.Fatal(err)
	}
	if schema.NumCols() != 2 || schema.Col(0).Name != "comp" || schema.Col(1).Kind != types.KindFloat {
		t.Errorf("view schema wrong: %v", schema.Columns())
	}
}

func TestAnalyzePerRowFunction(t *testing.T) {
	query.RegisterFunc("test_price", func(args []types.Value) (types.Value, error) {
		return types.Float(args[0].Float() - args[1].Float()), nil
	})
	cat := testCatalog(t)
	sp, err := Analyze(cat, "option_prices", optionPricesDef())
	if err != nil {
		t.Fatal(err)
	}
	if sp.Kind != PerRowFunction {
		t.Errorf("kind = %v", sp.Kind)
	}
	if sp.Base() != "stocks" || sp.Dim() != "options_list" {
		t.Errorf("base/dim = %s/%s", sp.Base(), sp.Dim())
	}
	if sp.dimJoinCol != "stock_symbol" || sp.baseJoinCol != "symbol" {
		t.Errorf("join cols = %s/%s", sp.dimJoinCol, sp.baseJoinCol)
	}
}

func TestAnalyzeRejections(t *testing.T) {
	cat := testCatalog(t)
	base := compPricesDef
	cases := []struct {
		name string
		mod  func(*query.Select)
		view string
	}{
		{"no name", func(q *query.Select) {}, ""},
		{"three tables", func(q *query.Select) { q.From = append(q.From, "options_list") }, "v"},
		{"one item", func(q *query.Select) { q.Items = q.Items[:1] }, "v"},
		{"unknown table", func(q *query.Select) { q.From[0] = "missing" }, "v"},
		{"no join", func(q *query.Select) { q.Where = nil }, "v"},
		{"non-eq join", func(q *query.Select) { q.Where[0].Op = query.LT }, "v"},
		{"group mismatch", func(q *query.Select) { q.GroupBy = []*query.ColRef{query.QCol("comps_list", "weight")} }, "v"},
		{"avg agg", func(q *query.Select) { q.Items[1].Agg = query.AggAvg }, "v"},
		{"no alias", func(q *query.Select) { q.Items[1].As = "" }, "v"},
		{"key not colref", func(q *query.Select) {
			q.Items[0] = query.Item(query.Arith(query.QCol("comps_list", "weight"), '+', query.Const(types.Int(1))), "k")
		}, "v"},
	}
	for _, tc := range cases {
		q := base()
		tc.mod(q)
		if _, err := Analyze(cat, tc.view, q); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	// Plain column value (no agg, no function).
	q := base()
	q.GroupBy = nil
	q.Items[1] = query.Item(query.QCol("comps_list", "weight"), "w")
	if _, err := Analyze(cat, "v", q); err == nil {
		t.Error("plain column value accepted")
	}
}

func TestAdviseAggregation(t *testing.T) {
	cat := testCatalog(t)
	sp, err := Analyze(cat, "comp_prices", compPricesDef())
	if err != nil {
		t.Fatal(err)
	}
	// Paper-scale stats: 33 upd/s × 12 fan-out over 400 groups = 1 touch/s
	// per composite; expect ≈2 s window, unique on comp.
	adv := sp.Advise(Stats{UpdateRate: 33, FanOut: 12, Groups: 400, MaxStaleness: clock.FromSeconds(3)})
	if !adv.Unique || len(adv.UniqueOn) != 1 || adv.UniqueOn[0] != "comp" {
		t.Errorf("advice = %+v", adv)
	}
	if adv.Delay < clock.FromSeconds(1.5) || adv.Delay > clock.FromSeconds(3) {
		t.Errorf("delay = %.2fs, want ≈2s", float64(adv.Delay)/1e6)
	}
	if !strings.Contains(adv.Reason, "view key") {
		t.Errorf("reason = %q", adv.Reason)
	}
	// Staleness clamp.
	adv = sp.Advise(Stats{UpdateRate: 1, FanOut: 1, Groups: 1000, MaxStaleness: clock.FromSeconds(1)})
	if adv.Delay != clock.FromSeconds(1) {
		t.Errorf("unclamped delay %d", adv.Delay)
	}
	// Floor.
	adv = sp.Advise(Stats{UpdateRate: 1e6, FanOut: 100, Groups: 10, MaxStaleness: clock.FromSeconds(3)})
	if adv.Delay != 100_000 {
		t.Errorf("floor delay = %d", adv.Delay)
	}
}

func TestAdvisePerRow(t *testing.T) {
	cat := testCatalog(t)
	sp, err := Analyze(cat, "option_prices", optionPricesDef())
	if err != nil {
		t.Fatal(err)
	}
	adv := sp.Advise(Stats{UpdateRate: 33, FanOut: 8, Groups: 6600, MaxStaleness: clock.FromSeconds(3)})
	if len(adv.UniqueOn) != 1 || adv.UniqueOn[0] != "stock_symbol" {
		t.Errorf("advice = %+v (should batch per base key)", adv)
	}
	if !strings.Contains(adv.Reason, "base key") {
		t.Errorf("reason = %q", adv.Reason)
	}
}

func TestMaintenanceRuleShape(t *testing.T) {
	cat := testCatalog(t)
	sp, err := Analyze(cat, "comp_prices", compPricesDef())
	if err != nil {
		t.Fatal(err)
	}
	adv := sp.Advise(Stats{UpdateRate: 33, FanOut: 12, Groups: 400, MaxStaleness: clock.FromSeconds(3)})
	rule, fn, err := sp.MaintenanceRule("maintain_cp", adv)
	if err != nil {
		t.Fatal(err)
	}
	if fn == nil {
		t.Fatal("nil action")
	}
	if rule.Table != "stocks" || rule.Name != "maintain_comp_prices" {
		t.Errorf("rule = %+v", rule)
	}
	if len(rule.Events) != 1 || rule.Events[0].Kind.String() != "updated" ||
		len(rule.Events[0].Columns) != 1 || rule.Events[0].Columns[0] != "price" {
		t.Errorf("events = %+v", rule.Events)
	}
	if len(rule.Condition) != 1 || rule.Condition[0].Bind != "vg_changes" {
		t.Errorf("condition = %+v", rule.Condition)
	}
	if !rule.Unique || rule.UniqueOn[0] != "vg_key" {
		t.Errorf("unique = %v %v", rule.Unique, rule.UniqueOn)
	}
}
