package strip

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/stripdb/strip/internal/obs"
)

// Live stress over the two-level lock protocol: indexed single-row writers,
// full-table scanners, and a batch transaction that crosses the escalation
// threshold all run against the same table while the rule engine maintains
// a mirror via delta recomputes. Deadlocks between record writers and the
// escalating batch are expected and must be resolved by the detector; the
// mirror must equal the source exactly at quiescence. Run with -race this
// exercises shard routing, escalation, and the detector together.
func TestLiveRecordLockStress(t *testing.T) {
	db := MustOpen(Config{Workers: 4, LockShards: 8, EscalationThreshold: 8})
	defer db.Close()

	db.MustExec(`create table stocks (symbol text, price float)`)
	db.MustExec(`create index on stocks (symbol)`)
	db.MustExec(`create table mirror (symbol text, price float)`)
	db.MustExec(`create index on mirror (symbol)`)
	const nSym = 32
	for i := 0; i < nSym; i++ {
		db.MustExec(fmt.Sprintf(`insert into stocks values ('S%02d', 100)`, i))
		db.MustExec(fmt.Sprintf(`insert into mirror values ('S%02d', 100)`, i))
	}

	// Delta maintenance (like the paper's composite rules): summing
	// old→new diffs commutes, so the mirror converges to the source no
	// matter how concurrent tasks interleave.
	if err := db.RegisterFunc("mirror_sync", func(ctx *ActionContext) error {
		m, _ := ctx.Bound("changes")
		if m.Len() == 0 {
			return nil
		}
		sch := m.Schema()
		si := sch.ColIndex("symbol")
		oi, ni := sch.ColIndex("old_price"), sch.ColIndex("new_price")
		diff := 0.0
		for i := 0; i < m.Len(); i++ {
			diff += m.Value(i, ni).Float() - m.Value(i, oi).Float()
		}
		_, err := ExecAction(ctx, fmt.Sprintf(
			`update mirror set price += %g where symbol = '%v'`, diff, m.Value(0, si)))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`
	  create rule mirror_rule on stocks
	  when updated price
	  if select new.symbol as symbol, old.price as old_price, new.price as new_price
	     from new, old
	     where new.execute_order = old.execute_order
	     bind as changes
	  then execute mirror_sync
	  unique on symbol`)

	// retry re-runs op until it commits; lock-manager victims abort with
	// ErrDeadlock and simply try again, as a real client would.
	retry := func(op func() error) error {
		for attempt := 0; attempt < 50; attempt++ {
			if err := op(); err == nil {
				return nil
			}
		}
		return fmt.Errorf("op still failing after 50 attempts")
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 8)

	// Two indexed writers: record-granularity updates across all symbols.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				sym := (w*17 + i*5) % nSym
				price := 90 + float64((w*31+i)%41)
				if err := retry(func() error {
					_, err := db.Exec(fmt.Sprintf(
						`update stocks set price = %g where symbol = 'S%02d'`, price, sym))
					return err
				}); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}

	// One scanner: unindexed reads take the full table S.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			if err := retry(func() error {
				res, err := db.Exec(`select symbol, price from stocks`)
				if err != nil {
					return err
				}
				if len(res.Rows) != nSym {
					return fmt.Errorf("scan saw %d rows", len(res.Rows))
				}
				return nil
			}); err != nil {
				errCh <- err
				return
			}
		}
	}()

	// One batch writer: 12 distinct record locks in one transaction
	// crosses EscalationThreshold=8 and upgrades to the full table X,
	// manufacturing IX-vs-X deadlocks with the record writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 6; round++ {
			if err := retry(func() error {
				tx := db.Begin()
				for s := 0; s < 12; s++ {
					if _, err := db.ExecIn(tx, fmt.Sprintf(
						`update stocks set price += 0.5 where symbol = 'S%02d'`, s)); err != nil {
						tx.Abort()
						return err
					}
				}
				return tx.Commit()
			}); err != nil {
				errCh <- err
				return
			}
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Settle: merging can enqueue one more round after the first drain.
	for i := 0; i < 3; i++ {
		time.Sleep(30 * time.Millisecond)
		db.WaitIdle()
	}

	st := db.Stats("mirror_sync")
	if st.TaskErrors != 0 {
		t.Fatalf("task errors: %d (restarts %d)", st.TaskErrors, st.Restarts)
	}

	want := map[string]float64{}
	res := db.MustExec(`select symbol, price from stocks`)
	for _, r := range res.Rows {
		want[r[0].Str()] = r[1].Float()
	}
	res = db.MustExec(`select symbol, price from mirror`)
	if len(res.Rows) != nSym {
		t.Fatalf("mirror has %d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		if got, wantP := r[1].Float(), want[r[0].Str()]; got != wantP {
			t.Errorf("mirror[%s] = %g, stocks = %g", r[0].Str(), got, wantP)
		}
	}

	ls := db.LockStats()
	if ls.RecordAcquires == 0 {
		t.Error("no record-granularity locks were taken")
	}
	snap := db.Metrics()
	if snap.Counters[obs.MLockEscalations] == 0 {
		t.Error("batch writer never escalated to a table lock")
	}
	if n := len(db.LockShardLoads()); n != 8 {
		t.Errorf("LockShardLoads returned %d shards, want 8", n)
	}
}
