module github.com/stripdb/strip

go 1.22
