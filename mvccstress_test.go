package strip

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// Live stress over MVCC snapshot reads: transfer transactions move money
// between accounts (sum-preserving), lock-free readers continuously sum the
// table, a pinned read-only transaction demands repeatable reads across the
// whole run, and a rule recompute asserts the invariant from its own
// snapshot. Any torn snapshot — a scan observing half a transfer — breaks
// the sum. Run with -race this exercises version-chain publication, the
// retired set, trigger-wait, and version GC together.
func TestLiveSnapshotStress(t *testing.T) {
	db := MustOpen(Config{Workers: 4, LockShards: 8})
	defer db.Close()

	db.MustExec(`create table accounts (id text, balance float)`)
	db.MustExec(`create index on accounts (id)`)
	db.MustExec(`create table totals (k text, v float)`)
	const nAcct = 16
	const total = float64(nAcct * 100)
	for i := 0; i < nAcct; i++ {
		db.MustExec(fmt.Sprintf(`insert into accounts values ('A%02d', 100)`, i))
	}
	db.MustExec(fmt.Sprintf(`insert into totals values ('sum', %g)`, total))

	// The recompute reads the full table from its action snapshot and
	// checks the invariant there; the delta keeps totals converging.
	scanAccounts, err := ParseSelect(`select balance from accounts`)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterFunc("total_sync", func(ctx *ActionContext) error {
		m, _ := ctx.Bound("changes")
		diff := 0.0
		sch := m.Schema()
		oi, ni := sch.ColIndex("old_b"), sch.ColIndex("new_b")
		for i := 0; i < m.Len(); i++ {
			diff += m.Value(i, ni).Float() - m.Value(i, oi).Float()
		}
		res, err := ctx.Query(scanAccounts)
		if err != nil {
			return err
		}
		sum := 0.0
		for i := 0; i < res.Len(); i++ {
			sum += res.Value(i, 0).Float()
		}
		res.Retire()
		if sum != total {
			return fmt.Errorf("recompute snapshot torn: sum = %g, want %g", sum, total)
		}
		_, err = ExecAction(ctx, fmt.Sprintf(`update totals set v += %g where k = 'sum'`, diff))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`
	  create rule total_rule on accounts
	  when updated balance
	  if select new.balance as new_b, old.balance as old_b
	     from new, old
	     where new.execute_order = old.execute_order
	     bind as changes
	  then execute total_sync
	  unique`)

	// Pin a snapshot before any churn; it must read the seed state —
	// identically — no matter when its scans run.
	pinned := db.BeginReadOnly()
	pinnedRows := func() map[string]float64 {
		res, err := db.ExecIn(pinned, `select id, balance from accounts`)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]float64{}
		for _, r := range res.Rows {
			out[r[0].Str()] = r[1].Float()
		}
		return out
	}
	first := pinnedRows()
	if len(first) != nAcct {
		t.Fatalf("pinned snapshot rows = %d, want %d", len(first), nAcct)
	}

	retry := func(op func() error) error {
		for attempt := 0; attempt < 50; attempt++ {
			if err := op(); err == nil {
				return nil
			}
		}
		return fmt.Errorf("op still failing after 50 attempts")
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 8)

	// Transfer writers: each transaction moves money between two accounts.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				from := (w*7 + i*3) % nAcct
				to := (from + 1 + (w+i)%(nAcct-1)) % nAcct
				amt := float64(1 + (w+i)%5)
				if err := retry(func() error {
					tx := db.Begin()
					if _, err := db.ExecIn(tx, fmt.Sprintf(
						`update accounts set balance += %g where id = 'A%02d'`, amt, to)); err != nil {
						tx.Abort() //nolint:errcheck
						return err
					}
					if _, err := db.ExecIn(tx, fmt.Sprintf(
						`update accounts set balance += %g where id = 'A%02d'`, -amt, from)); err != nil {
						tx.Abort() //nolint:errcheck
						return err
					}
					return tx.Commit()
				}); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}

	// Lock-free readers: every snapshot must see the invariant exactly.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 80; i++ {
				res, err := db.Exec(`select balance from accounts`)
				if err != nil {
					errCh <- err
					return
				}
				sum := 0.0
				for _, row := range res.Rows {
					sum += row[0].Float()
				}
				if sum != total {
					errCh <- fmt.Errorf("torn snapshot: sum = %g, want %g", sum, total)
					return
				}
			}
		}()
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// The pinned snapshot rereads the exact seed state after all the churn.
	second := pinnedRows()
	for id, bal := range first {
		if second[id] != bal {
			t.Errorf("pinned snapshot drifted: %s = %g, first read %g", id, second[id], bal)
		}
	}
	if err := pinned.Commit(); err != nil {
		t.Fatal(err)
	}

	// Settle: merging can enqueue one more round after the first drain.
	for i := 0; i < 3; i++ {
		time.Sleep(30 * time.Millisecond)
		db.WaitIdle()
	}
	if st := db.Stats("total_sync"); st.TaskErrors != 0 {
		t.Fatalf("recompute errors: %d (restarts %d)", st.TaskErrors, st.Restarts)
	}
	res := db.MustExec(`select v from totals where k = 'sum'`)
	if got := res.Rows[0][0].Float(); got != total {
		t.Errorf("totals diverged: %g, want %g", got, total)
	}

	ms := db.MvccStats()
	if ms.ReadOnlyTxns == 0 || ms.SnapshotScans == 0 {
		t.Errorf("snapshot reads never ran: %+v", ms)
	}
	// With every snapshot released, GC at the full horizon reclaims every
	// retained version.
	db.Txns().RunVersionGC()
	if ms = db.MvccStats(); ms.VersionsRetained != 0 {
		t.Errorf("versions retained after quiesced GC = %d", ms.VersionsRetained)
	}
}
