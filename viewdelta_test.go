package strip

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/stripdb/strip/internal/obs"
)

// viewDB builds one engine with the oracle's schema, seed data, and a
// materialized view of the requested shape and maintenance mode.
func viewDB(t *testing.T, shape string, mode ViewMode) *DB {
	t.Helper()
	db := MustOpen(Config{Virtual: true})
	t.Cleanup(func() { db.Close() })
	db.MustExec(`create table stocks (symbol text, price float)`)
	db.MustExec(`create index on stocks (symbol)`)
	for i := 0; i < 8; i++ {
		db.MustExec(fmt.Sprintf(`insert into stocks values ('S%d', %d)`, i, 10+i))
	}
	var def *Select
	if shape == "agg" {
		db.MustExec(`create table comps_list (comp text, symbol text, weight float)`)
		db.MustExec(`create index on comps_list (symbol)`)
		// Each composite references a spread of symbols, including some
		// that do not exist yet (inserts later join them in).
		for c := 0; c < 4; c++ {
			for s := c; s < 12; s += 2 {
				db.MustExec(fmt.Sprintf(`insert into comps_list values ('C%d', 'S%d', 0.%d5)`, c, s, c+1))
			}
		}
		def = mustSelect(t, `
		  select comp, sum(price * weight) as price
		  from stocks, comps_list
		  where stocks.symbol = comps_list.symbol
		  group by comp`)
	} else {
		RegisterScalarFunc("vd_intrinsic", func(args []Value) (Value, error) {
			v := args[0].Float() - args[1].Float()
			if v < 0 {
				v = 0
			}
			return Float(v), nil
		})
		db.MustExec(`create table opts (opt text, symbol text, strike float)`)
		db.MustExec(`create index on opts (symbol)`)
		for o := 0; o < 16; o++ {
			db.MustExec(fmt.Sprintf(`insert into opts values ('O%d', 'S%d', %d)`, o, o%12, 8+o))
		}
		def = mustSelect(t, `
		  select opt, vd_intrinsic(price, strike) as v
		  from stocks, opts
		  where stocks.symbol = opts.symbol`)
	}
	vi, err := db.CreateMaterializedView("v", def, ViewOptions{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	want := "delta"
	if mode == ViewModeFull {
		want = "full"
	}
	if vi.Maintenance != want {
		t.Fatalf("maintenance = %q, want %q", vi.Maintenance, want)
	}
	return db
}

// viewContents reads the view's key and value columns into a map.
func viewContents(t *testing.T, db *DB, shape string) map[string]float64 {
	t.Helper()
	q := `select comp, price from v`
	if shape != "agg" {
		q = `select opt, v from v`
	}
	out := db.MustExec(q)
	got := make(map[string]float64, len(out.Rows))
	for _, r := range out.Rows {
		got[r[0].Str()] = r[1].Float()
	}
	return got
}

// TestDeltaFullEquivalenceOracle drives identical randomized batches of
// base-table inserts, deletes, price updates, and join-key re-keys through
// two engines — one maintaining the view from transition deltas, one
// rebuilding it wholesale — and requires identical view contents after
// every settled batch, for both supported view shapes. The delta engine
// must also actually run on the delta path: applied firings and zero
// consistency fallbacks.
func TestDeltaFullEquivalenceOracle(t *testing.T) {
	for _, shape := range []string{"agg", "perrow"} {
		t.Run(shape, func(t *testing.T) {
			rng := rand.New(rand.NewSource(41))
			delta := viewDB(t, shape, ViewModeDelta)
			full := viewDB(t, shape, ViewModeFull)

			live := map[string]bool{}
			for i := 0; i < 8; i++ {
				live[fmt.Sprintf("S%d", i)] = true
			}
			next := 8
			// pick chooses a live symbol deterministically: map iteration
			// order is randomized per process, so sort before indexing by
			// the seeded rng.
			pick := func() string {
				ks := make([]string, 0, len(live))
				for k := range live {
					ks = append(ks, k)
				}
				if len(ks) == 0 {
					return ""
				}
				sortStrings(ks)
				return ks[rng.Intn(len(ks))]
			}

			both := func(sql string) {
				delta.MustExec(sql)
				full.MustExec(sql)
			}
			for batch := 0; batch < 25; batch++ {
				for op := 0; op < 1+rng.Intn(4); op++ {
					switch r := rng.Intn(10); {
					case r < 4: // price update
						if s := pick(); s != "" {
							both(fmt.Sprintf(`update stocks set price = %d where symbol = '%s'`, 5+rng.Intn(40), s))
						}
					case r < 6: // insert (fresh unique symbol, maybe joining dim rows)
						s := fmt.Sprintf("S%d", next%14)
						if !live[s] {
							live[s] = true
							both(fmt.Sprintf(`insert into stocks values ('%s', %d)`, s, 5+rng.Intn(40)))
						}
						next++
					case r < 8: // delete
						if s := pick(); s != "" {
							delete(live, s)
							both(fmt.Sprintf(`delete from stocks where symbol = '%s'`, s))
						}
					default: // re-key: move the row's join key (group churn)
						s := pick()
						to := fmt.Sprintf("S%d", rng.Intn(14))
						if s != "" && !live[to] {
							delete(live, s)
							live[to] = true
							both(fmt.Sprintf(`update stocks set symbol = '%s' where symbol = '%s'`, to, s))
						}
					}
				}
				delta.WaitIdle()
				full.WaitIdle()
				want := viewContents(t, full, shape)
				got := viewContents(t, delta, shape)
				if len(got) != len(want) {
					t.Fatalf("batch %d: delta view has %d rows, full has %d\n delta=%v\n full=%v",
						batch, len(got), len(want), got, want)
				}
				for k, w := range want {
					g, ok := got[k]
					if !ok || math.Abs(g-w) > 1e-6*(1+math.Abs(w)) {
						t.Fatalf("batch %d key %s: delta=%v full=%v", batch, k, g, w)
					}
				}
			}

			dm := delta.Metrics().Counters
			if dm[obs.MDeltaApplied] == 0 {
				t.Error("delta engine never took the delta path")
			}
			if dm[obs.MDeltaFallbacks] != 0 {
				t.Errorf("delta engine fell back %d times", dm[obs.MDeltaFallbacks])
			}
			fm := full.Metrics().Counters
			if fm[obs.MDeltaApplied] != 0 {
				t.Errorf("full engine applied deltas %d times", fm[obs.MDeltaApplied])
			}
		})
	}
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// TestDeltaFallbackRepairsView corrupts an aggregation view out from under
// its delta maintainer (deleting a group row the next delta expects to
// update) and checks the consistency check trips, the counter records the
// fallback, and the full rebuild inside the same action repairs the view.
func TestDeltaFallbackRepairsView(t *testing.T) {
	db := viewDB(t, "agg", ViewModeDelta)
	db.WaitIdle()

	out := db.MustExec(`select comp, price from v where comp = 'C0'`)
	if len(out.Rows) != 1 {
		t.Fatalf("seed group missing: %v", out.Rows)
	}
	// Sabotage: remove the group row. The next update's delta has zero net
	// support change but a nonzero sum against a missing row — exactly the
	// "view lost state" signature ApplyAggDeltas must refuse to paper over.
	db.MustExec(`delete from v where comp = 'C0'`)

	db.MustExec(`update stocks set price = 99 where symbol = 'S0'`)
	db.WaitIdle()

	c := db.Metrics().Counters
	if c[obs.MDeltaFallbacks] != 1 {
		t.Fatalf("delta.fallbacks = %d, want 1", c[obs.MDeltaFallbacks])
	}
	// The fallback rebuilt the whole view: C0 is back and every group
	// matches a fresh evaluation of the defining query.
	want := db.MustExec(`
	  select comp, sum(price * weight) as price
	  from stocks, comps_list
	  where stocks.symbol = comps_list.symbol
	  group by comp`)
	got := viewContents(t, db, "agg")
	if len(got) != len(want.Rows) {
		t.Fatalf("view has %d groups, recompute has %d", len(got), len(want.Rows))
	}
	for _, r := range want.Rows {
		if math.Abs(got[r[0].Str()]-r[1].Float()) > 1e-9 {
			t.Errorf("group %s: view=%v recompute=%v", r[0].Str(), got[r[0].Str()], r[1].Float())
		}
	}
	if db.Stats("maintain_v_fn").TaskErrors != 0 {
		t.Errorf("fallback surfaced as task error")
	}
}
