package strip

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/stripdb/strip/internal/obs"
)

// TestStalenessGroundTruth drives the virtual clock deterministically: a
// base-table update commits at time t and its recompute commits at t+Δ
// (the rule's delay window), so the observed staleness must be exactly Δ.
func TestStalenessGroundTruth(t *testing.T) {
	db := setupPTA(t, Config{Virtual: true})
	if err := db.RegisterFunc("compute_comps3", computeComps3); err != nil {
		t.Fatal(err)
	}
	db.MustExec(doComps3SQL) // unique on comp, after 1.0 seconds

	const t0 = 10_000_000 // update commit time
	const delta = 1_000_000
	db.AdvanceTo(t0)
	db.MustExec(`update stocks set price = 31 where symbol = 'S1'`)

	// S1 feeds C1 and C2: two unique transactions, both stamped t0.
	if st := db.Staleness("compute_comps3"); st.Pending != 2 {
		t.Fatalf("pending = %d, want 2", st.Pending)
	}
	// Before the recompute, current staleness is the age of the update.
	db.AdvanceTo(t0 + 400_000)
	if st := db.Staleness("compute_comps3"); st.Current != 400_000 {
		t.Errorf("current staleness = %d, want 400000", st.Current)
	}

	db.AdvanceTo(t0 + delta) // the delay window elapses
	if n := db.RunReady(); n != 2 {
		t.Fatalf("ran %d tasks, want 2", n)
	}

	st := db.Staleness("compute_comps3")
	if st.Max != delta {
		t.Errorf("max staleness = %d, want exactly %d", st.Max, delta)
	}
	if st.Count != 2 || st.Pending != 0 || st.Current != 0 {
		t.Errorf("staleness = %+v, want count 2, nothing pending", st)
	}
	// The histogram quantile is bucketed: within 25% of Δ.
	if st.P95 < delta*3/4 || st.P95 > delta*5/4 {
		t.Errorf("p95 staleness = %d, want within 25%% of %d", st.P95, delta)
	}
}

// TestStalenessMergeKeepsOldestStamp: when a later update merges into a
// queued unique transaction, staleness is still measured from the first
// (oldest) un-recomputed update.
func TestStalenessMergeKeepsOldestStamp(t *testing.T) {
	db := setupPTA(t, Config{Virtual: true})
	if err := db.RegisterFunc("compute_comps3", computeComps3); err != nil {
		t.Fatal(err)
	}
	db.MustExec(doComps3SQL)

	db.AdvanceTo(1_000_000)
	db.MustExec(`update stocks set price = 41 where symbol = 'S2'`) // C2 only
	db.AdvanceTo(1_600_000)
	db.MustExec(`update stocks set price = 42 where symbol = 'S2'`) // merges into C2

	if st := db.Stats("compute_comps3"); st.TasksMerged != 1 {
		t.Fatalf("merged = %d, want 1", st.TasksMerged)
	}
	db.WaitIdle()
	// Task released at 1s+1s=2s: staleness from the FIRST update = 1s,
	// not 0.4s from the merged one.
	if st := db.Staleness("compute_comps3"); st.Max != 1_000_000 {
		t.Errorf("max staleness = %d, want 1000000 (oldest update's age)", st.Max)
	}
}

// TestMetricsSnapshotContents checks the acceptance list: transaction
// commit count and latency histogram, lock wait histogram, scheduler queue
// gauges, per-function action latency, and per-function staleness all
// appear in one Metrics snapshot.
func TestMetricsSnapshotContents(t *testing.T) {
	db := setupPTA(t, Config{Virtual: true})
	if err := db.RegisterFunc("compute_comps3", computeComps3); err != nil {
		t.Fatal(err)
	}
	db.MustExec(doComps3SQL)
	db.MustExec(`update stocks set price = 31 where symbol = 'S1'`)
	db.MustExec(`select * from comp_prices`)
	db.WaitIdle()

	snap := db.Metrics()
	if snap.Counters[obs.MTxnCommitted] == 0 {
		t.Error("no committed transactions counted")
	}
	if h, ok := snap.Histograms[obs.MTxnCommitMicros]; !ok || h.Count == 0 {
		t.Errorf("txn commit latency histogram missing or empty: %+v", h)
	}
	if _, ok := snap.Histograms[obs.MLockWaitMicros]; !ok {
		t.Error("lock wait histogram missing from snapshot")
	}
	if _, ok := snap.Gauges[obs.MSchedQueueReady]; !ok {
		t.Error("scheduler ready-queue gauge missing")
	}
	if _, ok := snap.Gauges[obs.MSchedQueueDelayed]; !ok {
		t.Error("scheduler delayed-queue gauge missing")
	}
	if snap.Counters[obs.MQuerySelects] == 0 {
		t.Error("no selects counted")
	}
	name := obs.ForFunc(obs.MActionLatencyMicros, "compute_comps3")
	h, ok := snap.Histograms[name]
	if !ok || h.Count != 2 {
		t.Fatalf("action latency histogram %q: %+v", name, h)
	}
	// Virtual-mode action latency = delay window (1s) + queueing (0).
	if h.Max != 1_000_000 {
		t.Errorf("action latency max = %d, want 1000000", h.Max)
	}
	if !(h.P50 <= h.P95 && h.P95 <= h.P99 && h.P99 <= h.Max) {
		t.Errorf("quantiles not monotonic: %+v", h)
	}
	st, ok := snap.Staleness["compute_comps3"]
	if !ok || st.Count != 2 || st.Max != 1_000_000 {
		t.Errorf("staleness snapshot = %+v", st)
	}
}

func TestMetricsRenderAndTrace(t *testing.T) {
	db := setupPTA(t, Config{Virtual: true})
	if err := db.RegisterFunc("compute_comps3", computeComps3); err != nil {
		t.Fatal(err)
	}
	db.MustExec(doComps3SQL)
	db.MustExec(`update stocks set price = 31 where symbol = 'S1'`)
	db.WaitIdle()

	var text bytes.Buffer
	if err := db.WriteMetrics(&text, false); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{obs.MTxnCommitted, "compute_comps3"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text metrics missing %q:\n%s", want, text.String())
		}
	}

	var js bytes.Buffer
	if err := db.WriteMetrics(&js, true); err != nil {
		t.Fatal(err)
	}
	var decoded Metrics
	if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
		t.Fatalf("metrics JSON does not round-trip: %v", err)
	}
	if decoded.Counters[obs.MTxnCommitted] == 0 {
		t.Error("decoded JSON lost the commit counter")
	}

	evs := db.Trace(-1)
	kinds := map[obs.Kind]bool{}
	for _, ev := range evs {
		kinds[ev.Kind] = true
	}
	for _, want := range []obs.Kind{
		obs.KindTxnCommit, obs.KindRuleFire, obs.KindTaskSubmit,
		obs.KindTaskStart, obs.KindTaskFinish, obs.KindActionDone,
	} {
		if !kinds[want] {
			t.Errorf("trace has no %s event (kinds seen: %v)", want, kinds)
		}
	}

	db.EnableTrace(false)
	before := len(db.Trace(-1))
	db.MustExec(`update stocks set price = 32 where symbol = 'S1'`)
	if got := len(db.Trace(-1)); got != before {
		t.Errorf("disabled trace grew from %d to %d events", before, got)
	}
	db.EnableTrace(true)

	db.ResetMetrics()
	if got := db.Metrics().Counters[obs.MTxnCommitted]; got != 0 {
		t.Errorf("ResetMetrics left committed = %d", got)
	}
}
