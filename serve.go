package strip

import (
	"fmt"
	"time"

	"github.com/stripdb/strip/internal/obs"
	"github.com/stripdb/strip/internal/server"
	"github.com/stripdb/strip/internal/txn"
)

// ServeOptions tunes the stripd network listener started by
// Config.ListenAddr. The zero value serves unauthenticated with the
// defaults documented on each field.
type ServeOptions struct {
	// AuthToken, when non-empty, must be presented by every client
	// handshake.
	AuthToken string
	// MaxConns caps concurrent sessions (default 256); excess connections
	// are turned away with a retryable busy error.
	MaxConns int
	// MaxInflight caps concurrently executing statements across all
	// sessions (default 64).
	MaxInflight int
	// TenantInflight caps concurrently executing statements per tenant
	// (default: MaxInflight).
	TenantInflight int
	// IdleTxnTimeout aborts interactive transactions with no statement
	// activity, so abandoned sessions release their locks (default 30s).
	IdleTxnTimeout time.Duration
	// SessionLifetime bounds a session's total age; 0 = unbounded.
	SessionLifetime time.Duration
	// ShareWindow is the gather window for shared snapshot query
	// execution: compatible read-only queries arriving within one window
	// run as a single snapshot scan at one LSN. 0 disables sharing.
	ShareWindow time.Duration
	// DrainTimeout bounds Close's session drain (default 5s).
	DrainTimeout time.Duration
}

// dbBackend adapts *DB to the server's Backend interface.
type dbBackend struct{ db *DB }

func (b dbBackend) Begin() *txn.Txn         { return b.db.Begin() }
func (b dbBackend) BeginReadOnly() *txn.Txn { return b.db.BeginReadOnly() }
func (b dbBackend) Obs() *obs.Registry      { return b.db.obs }
func (b dbBackend) Now() int64              { return b.db.clk.Now() }

func (b dbBackend) Exec(sql string) (*server.Result, error) {
	res, err := b.db.Exec(sql)
	if err != nil {
		return nil, err
	}
	return &server.Result{Columns: res.Columns, Rows: res.Rows, Affected: res.Affected}, nil
}

func (b dbBackend) ExecIn(tx *txn.Txn, sql string) (*server.Result, error) {
	res, err := b.db.ExecIn(tx, sql)
	if err != nil {
		return nil, err
	}
	return &server.Result{Columns: res.Columns, Rows: res.Rows, Affected: res.Affected}, nil
}

// Saturated rides the engine's overload machinery: when overload control
// is configured (Overload.ShedDepth), a ready queue at or past the shed
// depth makes admission control shed new network work with the same
// retryable busy semantics the scheduler applies to rule recomputes.
func (b dbBackend) Saturated() bool {
	depth := b.db.cfg.Overload.ShedDepth
	if depth <= 0 {
		return false
	}
	ready, _ := b.db.sched.Pending()
	return ready >= depth
}

// Repl exposes the primary's WAL shipper to the session layer. A typed-nil
// guard matters here: returning a nil *repl.Shipper inside the interface
// would read as non-nil to the server.
func (b dbBackend) Repl() server.ReplStreamer {
	if b.db.shipper == nil {
		return nil
	}
	return b.db.shipper
}

// ReplicaInfo reports replica mode for session-layer read gating.
func (b dbBackend) ReplicaInfo() (replica, ready bool, lagMicros int64) {
	// Gate on the replica flag, not the follower pointer: after Promote the
	// follower object survives (fenced, closed) but the engine is writable.
	if !b.db.replica.Load() {
		return false, false, 0
	}
	f := b.db.follower
	if f == nil {
		return false, false, 0
	}
	return true, !f.Resyncing(), f.LagMicros()
}

// startServer binds Config.ListenAddr and mounts /debug/sessions on
// stripmon when monitoring is enabled.
func (db *DB) startServer() error {
	srv, err := server.Start(server.Config{
		Addr:            db.cfg.ListenAddr,
		AuthToken:       db.cfg.Serve.AuthToken,
		MaxConns:        db.cfg.Serve.MaxConns,
		MaxInflight:     db.cfg.Serve.MaxInflight,
		TenantInflight:  db.cfg.Serve.TenantInflight,
		IdleTxnTimeout:  db.cfg.Serve.IdleTxnTimeout,
		SessionLifetime: db.cfg.Serve.SessionLifetime,
		ShareWindow:     db.cfg.Serve.ShareWindow,
		DrainTimeout:    db.cfg.Serve.DrainTimeout,
	}, dbBackend{db})
	if err != nil {
		return fmt.Errorf("strip: %w", err)
	}
	db.server = srv
	if db.mon != nil {
		db.mon.Handle("/debug/sessions", srv.SessionsHandler())
	}
	return nil
}

// ServerAddr returns the stripd listener's bound address (useful with
// Config.ListenAddr ":0"), or "" when serving is disabled.
func (db *DB) ServerAddr() string {
	if db.server == nil {
		return ""
	}
	return db.server.Addr()
}

// ServerSessions snapshots the live network sessions (also exported at
// stripmon's /debug/sessions).
func (db *DB) ServerSessions() []server.SessionInfo {
	if db.server == nil {
		return nil
	}
	return db.server.Sessions()
}
