package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	strip "github.com/stripdb/strip"
	"github.com/stripdb/strip/internal/query"
)

// The overload experiment measures what absorbs excess load when recompute
// demand exceeds worker capacity: client latency, or derived-data staleness.
//
// A live engine runs K symbols with a firm, unique-per-symbol recompute rule
// whose action costs actionWork of blocking work — so two workers saturate at
// roughly workers/actionWork recomputes per second. Open-loop clients offer
// update transactions at a multiple of that saturation rate, sweeping
// {0.5, 1, 2, 4}x in two modes:
//
//   - off: overload control disabled — the baseline engine. Unique-
//     transaction merging already bounds the queue at ~K tasks, but every
//     queued task eventually runs, however stale its inputs, and queueing
//     delay (hence staleness) settles at the merge equilibrium.
//   - on:  deadline-aware shedding + adaptive batching. Past the configured
//     depth/lag the scheduler drops firm recomputes that are superseded or
//     past deadline and widens batching windows, so workers spend their
//     cycles on fresh recomputes only.
//
// The acceptance property: at >= 2x saturation with overload control on,
// committed client-transaction throughput stays within 10% of the offered
// (peak) rate — overload shows up as bounded extra staleness, not as client
// backpressure or latency collapse.

type overloadRun struct {
	Mode       string  `json:"mode"` // off, on
	Multiplier float64 `json:"multiplier"`
	OfferedTPS float64 `json:"offered_tps"`

	CommittedTxns  int64   `json:"committed_txns"`
	CommittedTPS   float64 `json:"committed_tps"`
	CommittedRatio float64 `json:"committed_ratio"` // committed / offered

	ClientMeanMicros float64 `json:"client_mean_micros"`
	ClientMaxMicros  int64   `json:"client_max_micros"`

	TasksCreated int64 `json:"tasks_created"`
	TasksMerged  int64 `json:"tasks_merged"`
	TasksRun     int64 `json:"tasks_run"`
	TasksShed    int64 `json:"tasks_shed"`
	SchedShed    int64 `json:"sched_shed"`
	SchedRetried int64 `json:"sched_retried"`

	StaleP95Micros int64 `json:"stale_p95_micros"`
	StaleMaxMicros int64 `json:"stale_max_micros"`

	// Profiles carries each rule function's cost profile at the end of the
	// run (evaluate time, rows, lock wait, SLO breaches), so the artifact
	// records where the recompute budget went under each load multiplier.
	Profiles []strip.RuleProfile `json:"rule_profiles,omitempty"`
}

type overloadResult struct {
	Experiment string        `json:"experiment"`
	Scale      string        `json:"scale"`
	Symbols    int           `json:"symbols"`
	Workers    int           `json:"workers"`
	SatTPS     float64       `json:"saturation_tps"`
	DurationMs float64       `json:"duration_ms"`
	Runs       []overloadRun `json:"runs"`

	// Retention2x is the committed/offered ratio with overload control on
	// at the highest multiplier >= 2 — the acceptance number (>= 0.9 means
	// committed throughput held within 10% of peak under 2x overload).
	Retention2x float64 `json:"retention_2x"`
	// StaleRatio2x is on-mode staleness p95 at that multiplier over the
	// 0.5x on-mode p95: how much staleness absorbed the overload.
	StaleRatio2x float64 `json:"stale_ratio_2x"`
}

const (
	overloadWorkers = 2
	overloadSymbols = 64
	// actionWork is the blocking cost of one recompute.
	actionWork = 1500 * time.Microsecond
	// ruleDelay is the rule's batching window; firmWindow its shedding
	// deadline past release.
	ruleDelay  = 2 * time.Millisecond
	firmWindow = 20 * time.Millisecond
)

// overloadOnce runs one (mode, multiplier) cell on a fresh engine.
func overloadOnce(mode string, mult, satTPS float64, d time.Duration) (overloadRun, error) {
	cfg := strip.Config{Workers: overloadWorkers, CloseTimeout: 10 * time.Second}
	if mode == "on" {
		cfg.Overload = strip.OverloadPolicy{
			ShedDepth: 16,
			ShedLag:   5 * time.Millisecond,
			WidenMax:  4,
			WidenBase: ruleDelay,
		}
	}
	db := strip.MustOpen(cfg)
	defer db.Close()

	db.MustExec(`create table stocks (symbol text, price float)`)
	db.MustExec(`create index on stocks (symbol)`)
	db.MustExec(`create table mirror (symbol text, price float)`)
	db.MustExec(`create index on mirror (symbol)`)
	for i := 0; i < overloadSymbols; i++ {
		db.MustExec(fmt.Sprintf(`insert into stocks values ('S%02d', 100)`, i))
		db.MustExec(fmt.Sprintf(`insert into mirror values ('S%02d', 100)`, i))
	}

	if err := db.RegisterFunc("recompute", func(ctx *strip.ActionContext) error {
		m, _ := ctx.Bound("changes")
		if m.Len() == 0 {
			return nil
		}
		// Model an expensive derived-data recompute: the cost is charged
		// before the write so locks are held only briefly.
		time.Sleep(actionWork)
		sym := m.Value(m.Len()-1, m.Schema().ColIndex("symbol"))
		price := m.Value(m.Len()-1, m.Schema().ColIndex("price"))
		_, err := strip.ExecAction(ctx, fmt.Sprintf(
			`update mirror set price = %g where symbol = '%v'`, price.Float(), sym))
		return err
	}); err != nil {
		return overloadRun{}, err
	}
	if err := db.CreateRule(&strip.Rule{
		Name:   "overload_rule",
		Table:  "stocks",
		Events: []strip.EventSpec{{Kind: strip.Updated, Columns: []string{"price"}}},
		Condition: []*query.Select{{
			Items: []query.SelectItem{
				query.Item(query.Col("symbol"), ""),
				query.Item(query.Col("price"), ""),
			},
			From: []string{"new"},
			Bind: "changes",
		}},
		Action:   "recompute",
		Unique:   true,
		UniqueOn: []string{"symbol"},
		Delay:    ruleDelay.Microseconds(),
		Deadline: firmWindow.Microseconds(),
		Firm:     true,
	}); err != nil {
		return overloadRun{}, err
	}

	offered := satTPS * mult
	const feeders = 4
	interval := time.Duration(float64(feeders) / offered * float64(time.Second))

	var stop atomic.Bool
	var committed, latSum, latMax atomic.Int64
	errCh := make(chan error, feeders)
	var wg sync.WaitGroup
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			next := time.Now()
			for i := 0; !stop.Load(); i++ {
				// Open loop: issue on schedule, never skipping ticks; if the
				// engine backpressures the client this loop falls behind and
				// committed drops below offered.
				next = next.Add(interval)
				if wait := time.Until(next); wait > 0 {
					time.Sleep(wait)
				}
				sym := (f + i*feeders) % overloadSymbols
				t0 := time.Now()
				_, err := db.Exec(fmt.Sprintf(
					`update stocks set price = %g where symbol = 'S%02d'`,
					100+float64(i%40), sym))
				if err != nil {
					errCh <- err
					return
				}
				lat := time.Since(t0).Microseconds()
				committed.Add(1)
				latSum.Add(lat)
				for {
					cur := latMax.Load()
					if lat <= cur || latMax.CompareAndSwap(cur, lat) {
						break
					}
				}
			}
		}(f)
	}

	start := time.Now()
	time.Sleep(d)
	// Snapshot staleness while the system is still under load — after the
	// drain it would report the idle state.
	stale := db.Staleness("recompute")
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return overloadRun{}, err
	default:
	}

	st := db.Stats("recompute")
	ss := db.SchedStats()
	n := committed.Load()
	run := overloadRun{
		Mode:            mode,
		Multiplier:      mult,
		OfferedTPS:      offered,
		CommittedTxns:   n,
		CommittedTPS:    float64(n) / elapsed.Seconds(),
		ClientMaxMicros: latMax.Load(),
		TasksCreated:    st.TasksCreated,
		TasksMerged:     st.TasksMerged,
		TasksRun:        st.TasksRun,
		TasksShed:       st.TasksShed,
		SchedShed:       ss.Shed,
		SchedRetried:    ss.Retried,
		StaleP95Micros:  stale.P95,
		StaleMaxMicros:  stale.Max,
		Profiles:        db.RuleProfiles(),
	}
	run.CommittedRatio = run.CommittedTPS / offered
	if n > 0 {
		run.ClientMeanMicros = float64(latSum.Load()) / float64(n)
	}
	return run, nil
}

func runOverload(metricsPath, scale string, progress func(string)) {
	satTPS := float64(overloadWorkers) / actionWork.Seconds()
	d := 1500 * time.Millisecond
	mults := []float64{0.5, 1, 2, 4}
	if scale == "small" {
		d = 400 * time.Millisecond
		mults = []float64{0.5, 2}
	}

	res := overloadResult{
		Experiment: "overload",
		Scale:      scale,
		Symbols:    overloadSymbols,
		Workers:    overloadWorkers,
		SatTPS:     satTPS,
		DurationMs: float64(d.Microseconds()) / 1000,
	}
	var onLow overloadRun
	for _, mode := range []string{"off", "on"} {
		for _, mult := range mults {
			run, err := overloadOnce(mode, mult, satTPS, d)
			if err != nil {
				fail(err)
			}
			res.Runs = append(res.Runs, run)
			if progress != nil {
				progress(fmt.Sprintf(
					"overload mode=%-3s x%-3g committed_tps=%.0f (%.0f%% of offered) shed=%d stale_p95=%.1fms",
					mode, mult, run.CommittedTPS, 100*run.CommittedRatio,
					run.TasksShed, float64(run.StaleP95Micros)/1000))
			}
			if mode == "on" {
				if mult == mults[0] {
					onLow = run
				}
				if mult >= 2 {
					res.Retention2x = run.CommittedRatio
					if onLow.StaleP95Micros > 0 {
						res.StaleRatio2x = float64(run.StaleP95Micros) / float64(onLow.StaleP95Micros)
					}
				}
			}
		}
	}

	fmt.Printf("%-5s %5s %12s %12s %10s %10s %12s %12s\n",
		"mode", "mult", "offered", "committed", "shed", "merged", "stale_p95", "client_max")
	for _, r := range res.Runs {
		fmt.Printf("%-5s %5g %12.0f %12.0f %10d %10d %10.1fms %10.1fms\n",
			r.Mode, r.Multiplier, r.OfferedTPS, r.CommittedTPS, r.TasksShed,
			r.TasksMerged, float64(r.StaleP95Micros)/1000, float64(r.ClientMaxMicros)/1000)
	}
	fmt.Printf("retention at >=2x saturation (overload on): %.2f of offered (acceptance: >= 0.90)\n",
		res.Retention2x)
	if res.StaleRatio2x > 0 {
		fmt.Printf("staleness absorbed the overload: p95 grew %.1fx from 0.5x to >=2x load\n",
			res.StaleRatio2x)
	}

	if metricsPath == "" {
		return
	}
	f, err := os.Create(metricsPath)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&res); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", metricsPath)
}
