package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	strip "github.com/stripdb/strip"
	"github.com/stripdb/strip/client"
	"github.com/stripdb/strip/internal/obs"
)

// The serve experiment measures stripd under an open-loop read sweep: n
// remote clients each issue shareable SELECTs on a fixed arrival schedule
// (latency is measured from the scheduled send time, so queueing delay is
// charged — no coordinated omission), against two server configurations:
//
//   - perquery: ShareWindow 0 — every QUERY frame runs its own read-only
//     snapshot transaction and table scan.
//   - shared:   ShareWindow 2ms — compatible QUERY frames arriving within
//     one gather window batch onto a single snapshot scan at one LSN and
//     demultiplex rows to each waiting session.
//
// At low client counts the shared mode pays the gather window in latency
// for nothing; past the crossover the scan amortization dominates and
// shared qps pulls ahead — the SharedDB bet, measured end to end through
// the wire protocol. A low-rate writer keeps LSNs advancing so snapshot
// reads exercise real version chains.

type serveRun struct {
	Mode    string `json:"mode"` // perquery, shared
	Clients int    `json:"clients"`

	Queries  int64   `json:"queries"`
	QPS      float64 `json:"qps"`
	P50Micros int64  `json:"p50_micros"`
	P95Micros int64  `json:"p95_micros"`
	P99Micros int64  `json:"p99_micros"`

	SharedGroups    int64 `json:"shared_groups"`
	SharedQueries   int64 `json:"shared_queries"`
	SharedFallbacks int64 `json:"shared_fallbacks"`
	SnapshotScans   int64 `json:"snapshot_scans"`
	BusyRejected    int64 `json:"busy_rejected"`
}

type serveResult struct {
	Experiment string     `json:"experiment"`
	Scale      string     `json:"scale"`
	Rows       int        `json:"rows"`
	IntervalUs int64      `json:"arrival_interval_micros"`
	DurationMs float64    `json:"duration_ms"`
	Runs       []serveRun `json:"runs"`

	// SharedSpeedup is shared qps / perquery qps at the largest client
	// count (the acceptance cell: >= 256 concurrent readers).
	SharedSpeedupClients int     `json:"shared_speedup_clients"`
	SharedSpeedup        float64 `json:"shared_speedup"`
}

// serveArrival is each client's request schedule: one query per interval.
const serveArrival = 4 * time.Millisecond

// serveOnce runs one (mode, clients) cell on a fresh server for roughly d.
func serveOnce(share bool, clients, rows int, d time.Duration) (serveRun, error) {
	window := time.Duration(0)
	mode := "perquery"
	if share {
		window, mode = 2*time.Millisecond, "shared"
	}
	db, err := strip.Open(strip.Config{
		Workers:    2,
		ListenAddr: "127.0.0.1:0",
		Serve: strip.ServeOptions{
			MaxConns:    clients + 16,
			MaxInflight: clients + 16,
			ShareWindow: window,
		},
	})
	if err != nil {
		return serveRun{}, err
	}
	defer db.Close() //nolint:errcheck

	db.MustExec(`create table positions (sym text, value float)`)
	for i := 0; i < rows; i++ {
		db.MustExec(fmt.Sprintf(`insert into positions values ('P%04d', 100)`, i))
	}

	// Shareable query mix: single-table SELECTs over the same relation so
	// the gatherer can batch them onto one scan. All three are scan-heavy
	// with tiny outputs (aggregates and a point lookup on the unindexed
	// key), so the cost being amortized is the snapshot scan itself.
	mix := []string{
		`select sum(value) as total from positions`,
		`select count(sym) as n from positions`,
		`select sym, value from positions where sym = 'P0001'`,
	}

	// Dial all clients up front (staggered) so the measured window has a
	// steady population.
	conns := make([]*client.Client, clients)
	var dialWG sync.WaitGroup
	dialSem := make(chan struct{}, 64)
	var dialErr atomic.Value
	for i := range conns {
		dialWG.Add(1)
		go func(i int) {
			defer dialWG.Done()
			dialSem <- struct{}{}
			defer func() { <-dialSem }()
			c, err := client.Dial(db.ServerAddr(), client.Options{DialTimeout: 10 * time.Second})
			if err != nil {
				dialErr.Store(err)
				return
			}
			conns[i] = c
		}(i)
	}
	dialWG.Wait()
	if err, _ := dialErr.Load().(error); err != nil {
		return serveRun{}, err
	}
	defer func() {
		for _, c := range conns {
			if c != nil {
				c.Close() //nolint:errcheck
			}
		}
	}()

	// Low-rate writer: LSN churn so snapshot scans walk real version chains.
	var stop atomic.Bool
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := 0; !stop.Load(); i++ {
			sym := fmt.Sprintf("P%04d", i%rows)
			db.MustExec(`update positions set value = value + 1 where sym = '` + sym + `'`)
			time.Sleep(2 * time.Millisecond)
		}
	}()

	lats := make([][]int64, clients)
	var done int64
	var runErr atomic.Value
	start := time.Now()
	end := start.Add(d)
	var wg sync.WaitGroup
	for i, c := range conns {
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			next := start
			for {
				now := time.Now()
				if now.After(end) {
					return
				}
				if now.Before(next) {
					time.Sleep(next.Sub(now))
				}
				// Latency from the SCHEDULED send time: a request delayed
				// behind its predecessor on this connection is charged that
				// queueing, as an open-loop harness must.
				if _, err := c.Query(mix[len(lats[i])%len(mix)]); err != nil {
					runErr.Store(fmt.Errorf("client %d: %w", i, err))
					return
				}
				lats[i] = append(lats[i], time.Since(next).Microseconds())
				next = next.Add(serveArrival)
				atomic.AddInt64(&done, 1)
			}
		}(i, c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	stop.Store(true)
	writerWG.Wait()
	if err, _ := runErr.Load().(error); err != nil {
		return serveRun{}, err
	}

	var all []int64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	pct := func(p float64) int64 {
		if len(all) == 0 {
			return 0
		}
		idx := int(p * float64(len(all)-1))
		return all[idx]
	}

	reg := db.Obs()
	return serveRun{
		Mode:      mode,
		Clients:   clients,
		Queries:   done,
		QPS:       float64(done) / elapsed.Seconds(),
		P50Micros: pct(0.50),
		P95Micros: pct(0.95),
		P99Micros: pct(0.99),

		SharedGroups:    reg.Counter(obs.MSharedGroups).Load(),
		SharedQueries:   reg.Counter(obs.MSharedQueries).Load(),
		SharedFallbacks: reg.Counter(obs.MSharedFallbacks).Load(),
		SnapshotScans:   reg.Counter(obs.MMvccSnapshotScans).Load(),
		BusyRejected:    reg.Counter(obs.MServerBusy).Load(),
	}, nil
}

func runServeBench(metricsPath, scale string, progress func(string)) {
	rows, d := 2048, 1200*time.Millisecond
	sweep := []int{1, 4, 16, 64, 256, 1024}
	if scale == "small" {
		rows, d = 1024, 600*time.Millisecond
		sweep = []int{1, 16, 64, 256}
	}

	res := serveResult{
		Experiment: "serve",
		Scale:      scale,
		Rows:       rows,
		IntervalUs: serveArrival.Microseconds(),
		DurationMs: float64(d.Microseconds()) / 1000,
	}
	qps := map[string]map[int]float64{"perquery": {}, "shared": {}}
	for _, share := range []bool{false, true} {
		for _, n := range sweep {
			run, err := serveOnce(share, n, rows, d)
			if err != nil {
				fail(err)
			}
			qps[run.Mode][n] = run.QPS
			res.Runs = append(res.Runs, run)
			if progress != nil {
				progress(fmt.Sprintf("serve mode=%-8s clients=%-4d qps=%.0f p95=%dµs groups=%d shared_q=%d",
					run.Mode, run.Clients, run.QPS, run.P95Micros, run.SharedGroups, run.SharedQueries))
			}
		}
	}

	maxN := sweep[len(sweep)-1]
	res.SharedSpeedupClients = maxN
	if pq := qps["perquery"][maxN]; pq > 0 {
		res.SharedSpeedup = qps["shared"][maxN] / pq
	}

	fmt.Printf("%-10s %8s %12s %12s %12s %14s\n", "mode", "clients", "qps", "p95_µs", "p99_µs", "shared_groups")
	for _, r := range res.Runs {
		fmt.Printf("%-10s %8d %12.0f %12d %12d %14d\n",
			r.Mode, r.Clients, r.QPS, r.P95Micros, r.P99Micros, r.SharedGroups)
	}
	fmt.Printf("shared-scan speedup at %d clients: %.2fx\n", maxN, res.SharedSpeedup)

	if metricsPath == "" {
		return
	}
	f, err := os.Create(metricsPath)
	if err != nil {
		fail(err)
	}
	defer f.Close() //nolint:errcheck
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&res); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", metricsPath)
}
