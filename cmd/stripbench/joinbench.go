package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	strip "github.com/stripdb/strip"
	"github.com/stripdb/strip/internal/obs"
)

// The join experiment measures the cost-based planner against the seed
// interpreter's fixed FROM-order nesting on a join-heavy workload. The
// schema is the paper's trading shape widened to three tables:
//
//	sectors(sector, region)                      — tiny, unindexed
//	stocks(symbol, sector, price)                — indexed on symbol
//	trades(trade_id, symbol, qty)                — indexed on trade_id, symbol
//
// The benchmark queries list the tables in adversarial FROM order
// (smallest first), so fixed-order nesting scans sectors × stocks before
// it can touch an index, while the cost planner starts from the constant
// trade_id probe and drives the other tables from it. Both planners run
// the same SQL on identically loaded engines; rows_out must agree.

type joinRun struct {
	Query   string `json:"query"`
	Planner string `json:"planner"` // fixed (seed nesting) or cost
	RowsOut int    `json:"rows_out"`
	Iters   int    `json:"iters"`

	WallMs     float64 `json:"wall_ms"`
	QPS        float64 `json:"queries_per_sec"`
	CostMicros float64 `json:"virtual_cost_micros"`

	PlanBuilds int64    `json:"plan_builds"`
	PlanHits   int64    `json:"plan_hits"`
	Plan       []string `json:"plan"`
}

type joinResult struct {
	Experiment string    `json:"experiment"`
	Scale      string    `json:"scale"`
	Sectors    int       `json:"sectors"`
	Stocks     int       `json:"stocks"`
	Trades     int       `json:"trades"`
	Runs       []joinRun `json:"runs"`

	// Speedup is fixed-order wall time over cost-order wall time on the
	// probe-pushdown query (> 1 means the planner wins). The CI planner
	// job gates on it staying above 1.
	Speedup float64 `json:"speedup"`
}

// joinQueries are the measured statements. The first is the headline
// probe-pushdown case; the second has no constant predicate, so the win
// comes from join ordering alone.
func joinQueries(trades int) []struct{ name, sql string } {
	return []struct{ name, sql string }{
		{
			"probe_pushdown",
			fmt.Sprintf(`select trades.trade_id, stocks.symbol, sectors.region
				from sectors, stocks, trades
				where stocks.sector = sectors.sector
				  and trades.symbol = stocks.symbol
				  and trades.trade_id = %d`, trades/2),
		},
		{
			"three_way_join",
			`select sectors.region, sum(trades.qty) as qty
				from sectors, stocks, trades
				where stocks.sector = sectors.sector
				  and trades.symbol = stocks.symbol
				group by sectors.region`,
		},
	}
}

// joinLoad builds and populates one engine. Every stock belongs to one
// sector, every trade to one stock, so all joins are total.
func joinLoad(fixedOrder bool, sectors, stocks, trades int) *strip.DB {
	db := strip.MustOpen(strip.Config{Workers: 1, PlanFixedOrder: fixedOrder})
	db.MustExec(`create table sectors (sector text, region text)`)
	db.MustExec(`create table stocks (symbol text, sector text, price float)`)
	db.MustExec(`create table trades (trade_id int, symbol text, qty int)`)
	db.MustExec(`create index on stocks (symbol)`)
	db.MustExec(`create index on trades (trade_id)`)
	db.MustExec(`create index on trades (symbol)`)
	for i := 0; i < sectors; i++ {
		if err := db.Insert("sectors",
			strip.Str(fmt.Sprintf("sec%02d", i)), strip.Str(fmt.Sprintf("region%d", i%4))); err != nil {
			fail(err)
		}
	}
	for i := 0; i < stocks; i++ {
		if err := db.Insert("stocks",
			strip.Str(fmt.Sprintf("S%05d", i)), strip.Str(fmt.Sprintf("sec%02d", i%sectors)),
			strip.Float(100+float64(i))); err != nil {
			fail(err)
		}
	}
	for i := 0; i < trades; i++ {
		if err := db.Insert("trades",
			strip.Int(int64(i)), strip.Str(fmt.Sprintf("S%05d", i%stocks)),
			strip.Int(int64(1+i%7))); err != nil {
			fail(err)
		}
	}
	return db
}

// joinOnce measures one (planner, query) cell: iters repetitions of the
// statement on a warm engine, in their own read-only snapshot
// transactions via db.Query.
func joinOnce(db *strip.DB, planner, name, sql string, iters int) joinRun {
	sel, err := strip.ParseSelect(sql)
	if err != nil {
		fail(err)
	}
	// One warm-up run primes the plan cache so the loop measures
	// steady-state execution, as a rule evaluating repeatedly would.
	rows, _, err := db.Query(sel)
	if err != nil {
		fail(err)
	}
	before := db.Metrics()
	costBefore := db.Meter()
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, _, err := db.Query(sel); err != nil {
			fail(err)
		}
	}
	wall := time.Since(start)
	after := db.Metrics()

	plan, err := db.Explain(sql)
	if err != nil {
		fail(err)
	}
	var lines []string
	for _, l := range splitLines(plan) {
		lines = append(lines, l)
	}
	return joinRun{
		Query:      name,
		Planner:    planner,
		RowsOut:    len(rows),
		Iters:      iters,
		WallMs:     float64(wall.Microseconds()) / 1000,
		QPS:        float64(iters) / wall.Seconds(),
		CostMicros: db.Meter() - costBefore,
		PlanBuilds: after.Counters[obs.MQueryPlanBuilds] - before.Counters[obs.MQueryPlanBuilds],
		PlanHits:   after.Counters[obs.MQueryPlanHits] - before.Counters[obs.MQueryPlanHits],
		Plan:       lines,
	}
}

func splitLines(s string) []string {
	var out []string
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != '\n' {
			i++
		}
		if i > 0 {
			out = append(out, s[:i])
		}
		if i < len(s) {
			i++
		}
		s = s[i:]
	}
	return out
}

func runJoinBench(metricsPath, scale string, progress func(string)) {
	sectors, stocks, trades, iters := 20, 2000, 20000, 200
	if scale == "small" {
		sectors, stocks, trades, iters = 8, 200, 2000, 50
	}
	res := joinResult{
		Experiment: "join",
		Scale:      scale,
		Sectors:    sectors,
		Stocks:     stocks,
		Trades:     trades,
	}

	wall := map[string]map[string]float64{} // query -> planner -> wall_ms
	rowsOut := map[string]map[string]int{}
	for _, planner := range []string{"fixed", "cost"} {
		db := joinLoad(planner == "fixed", sectors, stocks, trades)
		for _, q := range joinQueries(trades) {
			run := joinOnce(db, planner, q.name, q.sql, iters)
			res.Runs = append(res.Runs, run)
			if wall[q.name] == nil {
				wall[q.name] = map[string]float64{}
				rowsOut[q.name] = map[string]int{}
			}
			wall[q.name][planner] = run.WallMs
			rowsOut[q.name][planner] = run.RowsOut
			if progress != nil {
				progress(fmt.Sprintf("join %-15s planner=%-5s rows=%-4d wall=%.1fms qps=%.0f",
					q.name, planner, run.RowsOut, run.WallMs, run.QPS))
			}
		}
		db.Close() //nolint:errcheck
	}

	for name, byPlanner := range rowsOut {
		if byPlanner["fixed"] != byPlanner["cost"] {
			fail(fmt.Errorf("join %s: planners disagree on rows_out: fixed=%d cost=%d",
				name, byPlanner["fixed"], byPlanner["cost"]))
		}
	}
	if w := wall["probe_pushdown"]; w["cost"] > 0 {
		res.Speedup = w["fixed"] / w["cost"]
	}

	fmt.Printf("%-16s %-7s %8s %12s %12s %12s\n", "query", "planner", "rows", "wall_ms", "qps", "cost_µs")
	for _, r := range res.Runs {
		fmt.Printf("%-16s %-7s %8d %12.1f %12.0f %12.0f\n",
			r.Query, r.Planner, r.RowsOut, r.WallMs, r.QPS, r.CostMicros)
	}
	fmt.Printf("probe-pushdown speedup (fixed/cost wall time): %.2fx\n", res.Speedup)

	if metricsPath == "" {
		return
	}
	f, err := os.Create(metricsPath)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&res); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", metricsPath)
}
