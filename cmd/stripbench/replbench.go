package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	strip "github.com/stripdb/strip"
	"github.com/stripdb/strip/client"
)

// The repl experiment measures read scale-out over WAL-shipping replicas
// as a weak-scaling sweep: a durable primary takes a steady update stream
// while a fixed open-loop reader population PER NODE hits each of n warm
// standbys (n = 0 reads the primary itself — the baseline). Offered read
// load therefore grows with the cluster, and each cell verifies the
// cluster sustains it: read qps tracks the offered rate, read latency
// percentiles stay bounded (no queueing collapse), and the replication lag
// distribution sampled from the followers stays within a few heartbeat
// intervals — followers replay an O(|delta|) redo stream, not full state.
//
// Latency is measured from each request's scheduled send time, so a
// saturated node is charged its queueing delay (no coordinated omission).

type replRun struct {
	Replicas int `json:"replicas"`
	Readers  int `json:"readers"`

	Reads        int64   `json:"reads"`
	ReplicaReads int64   `json:"replica_reads"`
	ReadQPS      float64 `json:"read_qps"`
	P50Micros    int64   `json:"p50_micros"`
	P95Micros    int64   `json:"p95_micros"`
	P99Micros    int64   `json:"p99_micros"`

	Writes   int64   `json:"writes"`
	WriteQPS float64 `json:"write_qps"`

	LagP50Micros int64 `json:"lag_p50_micros"`
	LagP95Micros int64 `json:"lag_p95_micros"`
	Resyncs      int64 `json:"resyncs"`
}

type replResult struct {
	Experiment string    `json:"experiment"`
	Scale      string    `json:"scale"`
	Rows       int       `json:"rows"`
	DurationMs float64   `json:"duration_ms"`
	Runs       []replRun `json:"runs"`

	// ReadScaling is read qps at the largest replica count divided by the
	// replica-free baseline; MaxLagP95Micros is the worst lag p95 seen in
	// any cell.
	ReadScalingReplicas int     `json:"read_scaling_replicas"`
	ReadScaling         float64 `json:"read_scaling"`
	MaxLagP95Micros     int64   `json:"max_lag_p95_micros"`
}

func pctOf(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(p*float64(len(sorted)-1))]
}

// replOnce runs one replica-count cell: a fresh primary, n converged
// standbys, and perNode open-loop readers against each serving node for
// roughly d.
func replOnce(replicas, perNode, rows int, arrival, d time.Duration) (replRun, error) {
	nodes := replicas
	if nodes == 0 {
		nodes = 1
	}
	readers := perNode * nodes
	pdir, err := os.MkdirTemp("", "replbench-p-")
	if err != nil {
		return replRun{}, err
	}
	defer os.RemoveAll(pdir) //nolint:errcheck

	primary, err := strip.Open(strip.Config{
		Workers:    2,
		DataDir:    pdir,
		ListenAddr: "127.0.0.1:0",
		Serve:      strip.ServeOptions{MaxConns: readers + 16, MaxInflight: readers + 16},
	})
	if err != nil {
		return replRun{}, err
	}
	defer primary.Close() //nolint:errcheck

	primary.MustExec(`create table kv (k text, v int)`)
	primary.MustExec(`create index on kv (k)`)
	for i := 0; i < rows; i++ {
		primary.MustExec(fmt.Sprintf(`insert into kv values ('k%04d', %d)`, i, i))
	}

	// Bring up the standbys and wait for convergence before measuring.
	stands := make([]*strip.DB, replicas)
	for i := range stands {
		rd, err := os.MkdirTemp("", "replbench-r-")
		if err != nil {
			return replRun{}, err
		}
		defer os.RemoveAll(rd) //nolint:errcheck
		r, err := strip.Open(strip.Config{
			Workers:    2,
			DataDir:    rd,
			ListenAddr: "127.0.0.1:0",
			ReplicaOf:  primary.ServerAddr(),
			Repl:       strip.ReplOptions{Heartbeat: 5 * time.Millisecond},
			Serve:      strip.ServeOptions{MaxConns: readers + 16, MaxInflight: readers + 16},
		})
		if err != nil {
			return replRun{}, err
		}
		defer r.Close() //nolint:errcheck
		stands[i] = r
	}
	for i, r := range stands {
		deadline := time.Now().Add(30 * time.Second)
		for {
			res, err := r.Exec(`select count(k) as n from kv`)
			if err == nil && len(res.Rows) == 1 && int(res.Rows[0][0].Float()) >= rows {
				break
			}
			if time.Now().After(deadline) {
				return replRun{}, fmt.Errorf("replica %d never converged", i)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Readers hit the standbys round-robin; with no standbys they hit the
	// primary and contend with its writer.
	endpoints := []string{primary.ServerAddr()}
	if replicas > 0 {
		endpoints = endpoints[:0]
		for _, r := range stands {
			endpoints = append(endpoints, r.ServerAddr())
		}
	}
	conns := make([]*client.Client, readers)
	for i := range conns {
		c, err := client.Dial(endpoints[i%len(endpoints)], client.Options{DialTimeout: 10 * time.Second})
		if err != nil {
			return replRun{}, err
		}
		defer c.Close() //nolint:errcheck
		conns[i] = c
	}

	// Steady primary writes keep the redo stream (and the followers) busy.
	var stop atomic.Bool
	var writes int64
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := 0; !stop.Load(); i++ {
			k := fmt.Sprintf("k%04d", i%rows)
			primary.MustExec(`update kv set v = v + 1 where k = '` + k + `'`)
			atomic.AddInt64(&writes, 1)
			time.Sleep(time.Millisecond)
		}
	}()

	// Lag sampler: the follower-side gauge, polled while the workload runs.
	var lagMu sync.Mutex
	var lagSamples []int64
	var samplerWG sync.WaitGroup
	if replicas > 0 {
		samplerWG.Add(1)
		go func() {
			defer samplerWG.Done()
			for !stop.Load() {
				for _, r := range stands {
					if st, ok := r.ReplStatus(); ok && st.LagMicros >= 0 && st.LagMicros < math.MaxInt64/4 {
						lagMu.Lock()
						lagSamples = append(lagSamples, st.LagMicros)
						lagMu.Unlock()
					}
				}
				time.Sleep(5 * time.Millisecond)
			}
		}()
	}

	mix := []string{
		`select v from kv where k = 'k0001'`,
		`select count(k) as n from kv`,
		`select v from kv where k = 'k0007'`,
	}
	lats := make([][]int64, readers)
	var done int64
	var runErr atomic.Value
	start := time.Now()
	end := start.Add(d)
	var wg sync.WaitGroup
	for i, c := range conns {
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			next := start
			for {
				now := time.Now()
				if now.After(end) {
					return
				}
				if now.Before(next) {
					time.Sleep(next.Sub(now))
				}
				if _, err := c.Query(mix[len(lats[i])%len(mix)]); err != nil {
					runErr.Store(fmt.Errorf("reader %d: %w", i, err))
					return
				}
				lats[i] = append(lats[i], time.Since(next).Microseconds())
				next = next.Add(arrival)
				atomic.AddInt64(&done, 1)
			}
		}(i, c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	stop.Store(true)
	writerWG.Wait()
	samplerWG.Wait()
	if err, _ := runErr.Load().(error); err != nil {
		return replRun{}, err
	}

	var all []int64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	sort.Slice(lagSamples, func(a, b int) bool { return lagSamples[a] < lagSamples[b] })

	run := replRun{
		Replicas:     replicas,
		Readers:      readers,
		Reads:        done,
		ReadQPS:      float64(done) / elapsed.Seconds(),
		P50Micros:    pctOf(all, 0.50),
		P95Micros:    pctOf(all, 0.95),
		P99Micros:    pctOf(all, 0.99),
		Writes:       atomic.LoadInt64(&writes),
		WriteQPS:     float64(atomic.LoadInt64(&writes)) / elapsed.Seconds(),
		LagP50Micros: pctOf(lagSamples, 0.50),
		LagP95Micros: pctOf(lagSamples, 0.95),
	}
	if replicas > 0 {
		run.ReplicaReads = done
		for _, r := range stands {
			if st, ok := r.ReplStatus(); ok {
				run.Resyncs += st.Resyncs
			}
		}
	}
	return run, nil
}

func runReplBench(metricsPath, scale string, progress func(string)) {
	rows, d, perNode, arrival := 2048, 1500*time.Millisecond, 8, 8*time.Millisecond
	sweep := []int{0, 1, 2, 3}
	if scale == "small" {
		rows, d, perNode, arrival = 512, 700*time.Millisecond, 6, 2*time.Millisecond
		sweep = []int{0, 1, 2}
	}

	res := replResult{
		Experiment: "repl",
		Scale:      scale,
		Rows:       rows,
		DurationMs: float64(d.Microseconds()) / 1000,
	}
	qps := map[int]float64{}
	for _, n := range sweep {
		run, err := replOnce(n, perNode, rows, arrival, d)
		if err != nil {
			fail(err)
		}
		qps[n] = run.ReadQPS
		res.Runs = append(res.Runs, run)
		if run.LagP95Micros > res.MaxLagP95Micros {
			res.MaxLagP95Micros = run.LagP95Micros
		}
		if progress != nil {
			progress(fmt.Sprintf("repl replicas=%d readers=%d read_qps=%.0f p95=%dµs lag_p95=%dµs writes=%d",
				run.Replicas, run.Readers, run.ReadQPS, run.P95Micros, run.LagP95Micros, run.Writes))
		}
	}

	maxN := sweep[len(sweep)-1]
	res.ReadScalingReplicas = maxN
	if base := qps[0]; base > 0 {
		res.ReadScaling = qps[maxN] / base
	}

	fmt.Printf("%9s %8s %12s %10s %10s %12s %12s\n",
		"replicas", "readers", "read_qps", "p95_µs", "p99_µs", "lag_p95_µs", "write_qps")
	for _, r := range res.Runs {
		fmt.Printf("%9d %8d %12.0f %10d %10d %12d %12.0f\n",
			r.Replicas, r.Readers, r.ReadQPS, r.P95Micros, r.P99Micros, r.LagP95Micros, r.WriteQPS)
	}
	fmt.Printf("read scale-out at %d replicas: %.2fx; worst lag p95: %dµs\n",
		maxN, res.ReadScaling, res.MaxLagP95Micros)

	if metricsPath == "" {
		return
	}
	f, err := os.Create(metricsPath)
	if err != nil {
		fail(err)
	}
	defer f.Close() //nolint:errcheck
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&res); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", metricsPath)
}
