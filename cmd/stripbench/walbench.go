package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	strip "github.com/stripdb/strip"
)

// walMetrics is the durability section of the metrics artifact: the cost of
// turning the write-ahead log on, and how well group commit amortizes fsyncs.
type walMetrics struct {
	Commits int `json:"commits"`

	// Sequential single-tuple writes, in-memory vs durable (µs).
	MemP50 int64 `json:"mem_commit_p50_us"`
	MemP95 int64 `json:"mem_commit_p95_us"`
	MemP99 int64 `json:"mem_commit_p99_us"`
	WalP50 int64 `json:"wal_commit_p50_us"`
	WalP95 int64 `json:"wal_commit_p95_us"`
	WalP99 int64 `json:"wal_commit_p99_us"`
	// OverheadP50 is wal_p50 - mem_p50: the median per-commit durability tax.
	OverheadP50 int64 `json:"commit_overhead_p50_us"`

	SeqFsyncs          int64   `json:"seq_fsyncs"`
	SeqCommitsPerFsync float64 `json:"seq_commits_per_fsync"`

	// Concurrent committers: group-commit batch-size distribution.
	GroupWorkers         int     `json:"group_workers"`
	GroupCommits         int     `json:"group_commits"`
	GroupP50             int64   `json:"group_commit_p50_us"`
	GroupP95             int64   `json:"group_commit_p95_us"`
	GroupBatchP50        int64   `json:"group_batch_p50"`
	GroupBatchP95        int64   `json:"group_batch_p95"`
	GroupBatchMax        int64   `json:"group_batch_max"`
	GroupFsyncs          int64   `json:"group_fsyncs"`
	GroupCommitsPerFsync float64 `json:"group_commits_per_fsync"`

	FsyncP50 int64 `json:"fsync_p50_us"`
	FsyncP95 int64 `json:"fsync_p95_us"`
	LogBytes int64 `json:"log_bytes"`

	// Profiles keeps the artifact schema uniform across experiments; the
	// wal workload installs no rules, so this is normally omitted.
	Profiles []strip.RuleProfile `json:"rule_profiles,omitempty"`
}

// runWalBench measures the paper's Table 1 "simple 1-tuple update" workload
// with durability on: per-commit latency against an in-memory engine, the
// same against a WAL-backed engine, and group-commit batching under
// concurrent committers. It prints a Table-1-style summary and, when
// metricsPath is non-empty, writes a {"wal": ...} artifact.
func runWalBench(metricsPath string, progress func(string)) {
	const (
		seqCommits = 2000
		workers    = 8
		perWorker  = 500
		groupEvery = 64
	)
	say := func(s string) {
		if progress != nil {
			progress(s)
		}
	}
	m := walMetrics{Commits: seqCommits, GroupWorkers: workers, GroupCommits: workers * perWorker}

	// Baseline: purely in-memory commits.
	say("wal: sequential baseline (in-memory)")
	mem := strip.MustOpen(strip.Config{Workers: 1})
	memLat := seqWrites(mem, seqCommits)
	mem.Close()
	m.MemP50, m.MemP95, m.MemP99 = pct(memLat, 50), pct(memLat, 95), pct(memLat, 99)

	// Durable sequential: every commit waits for its fsync batch.
	say("wal: sequential durable commits")
	dir, err := os.MkdirTemp("", "stripbench-wal-*")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(dir)
	db := strip.MustOpen(strip.Config{Workers: 1, DataDir: dir,
		Sync: strip.SyncPolicy{Every: groupEvery}})
	walLat := seqWrites(db, seqCommits)
	m.WalP50, m.WalP95, m.WalP99 = pct(walLat, 50), pct(walLat, 95), pct(walLat, 99)
	m.Profiles = db.RuleProfiles()
	m.OverheadP50 = m.WalP50 - m.MemP50
	if info, ok := db.WalInfo(); ok {
		m.SeqFsyncs = info.Fsyncs
		if info.Fsyncs > 0 {
			m.SeqCommitsPerFsync = float64(seqCommits) / float64(info.Fsyncs)
		}
	}
	db.Close()

	// Concurrent committers: group commit should amortize fsyncs.
	say(fmt.Sprintf("wal: %d concurrent committers", workers))
	gdir, err := os.MkdirTemp("", "stripbench-walg-*")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(gdir)
	gdb := strip.MustOpen(strip.Config{Workers: 1, DataDir: gdir,
		Sync: strip.SyncPolicy{Every: groupEvery}})
	// One table per worker: exclusive table locks are held until a commit is
	// durable, so committers on a shared table would serialize and group
	// commit could never batch. Independent tables let commits overlap, which
	// is the scenario group commit exists for.
	for w := 0; w < workers; w++ {
		if err := gdb.CreateTable(fmt.Sprintf("bench%d", w),
			strip.Column{Name: "w", Type: "INT"}, strip.Column{Name: "i", Type: "INT"}); err != nil {
			fail(err)
		}
	}
	preFsyncs := int64(0)
	if info, ok := gdb.WalInfo(); ok {
		preFsyncs = info.Fsyncs
	}
	var wg sync.WaitGroup
	lats := make([][]int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			table := fmt.Sprintf("bench%d", w)
			lats[w] = make([]int64, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				start := time.Now()
				if err := gdb.Insert(table, strip.Int(int64(w)), strip.Int(int64(i))); err != nil {
					fail(err)
				}
				lats[w] = append(lats[w], time.Since(start).Microseconds())
			}
		}(w)
	}
	wg.Wait()
	var groupLat []int64
	for _, l := range lats {
		groupLat = append(groupLat, l...)
	}
	m.GroupP50, m.GroupP95 = pct(groupLat, 50), pct(groupLat, 95)
	if info, ok := gdb.WalInfo(); ok {
		m.GroupBatchP50 = info.GroupBatch.P50
		m.GroupBatchP95 = info.GroupBatch.P95
		m.GroupBatchMax = info.GroupBatch.Max
		m.GroupFsyncs = info.Fsyncs - preFsyncs
		if m.GroupFsyncs > 0 {
			m.GroupCommitsPerFsync = float64(m.GroupCommits) / float64(m.GroupFsyncs)
		}
		m.FsyncP50 = info.FsyncMicros.P50
		m.FsyncP95 = info.FsyncMicros.P95
		m.LogBytes = info.LogBytes
	}
	gdb.Close()

	fmt.Println("Durability: single-tuple write commit latency (measured, µs)")
	fmt.Printf("  %-28s %8s %8s %8s\n", "", "p50", "p95", "p99")
	fmt.Printf("  %-28s %8d %8d %8d\n", "in-memory", m.MemP50, m.MemP95, m.MemP99)
	fmt.Printf("  %-28s %8d %8d %8d\n", "wal (fsync per batch)", m.WalP50, m.WalP95, m.WalP99)
	fmt.Printf("  %-28s %8d\n", "durability tax (p50)", m.OverheadP50)
	fmt.Printf("  sequential: %d commits, %d fsyncs (%.1f commits/fsync)\n",
		m.Commits, m.SeqFsyncs, m.SeqCommitsPerFsync)
	fmt.Printf("group commit: %d workers x %d commits\n", workers, perWorker)
	fmt.Printf("  commit latency p50=%dµs p95=%dµs\n", m.GroupP50, m.GroupP95)
	fmt.Printf("  batch size    p50=%d p95=%d max=%d\n", m.GroupBatchP50, m.GroupBatchP95, m.GroupBatchMax)
	fmt.Printf("  %d fsyncs (%.1f commits/fsync), fsync p50=%dµs p95=%dµs, log %d bytes\n",
		m.GroupFsyncs, m.GroupCommitsPerFsync, m.FsyncP50, m.FsyncP95, m.LogBytes)

	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]walMetrics{"wal": m}); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote metrics artifact: %s (wal section)\n", metricsPath)
	}
}

// seqWrites runs n single-row insert transactions and returns per-commit
// latencies in microseconds.
func seqWrites(db *strip.DB, n int) []int64 {
	if err := db.CreateTable("bench", strip.Column{Name: "k", Type: "INT"}, strip.Column{Name: "v", Type: "INT"}); err != nil {
		fail(err)
	}
	lat := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		if err := db.Insert("bench", strip.Int(int64(i)), strip.Int(int64(i))); err != nil {
			fail(err)
		}
		lat = append(lat, time.Since(start).Microseconds())
	}
	return lat
}

// pct returns the p-th percentile of the (unsorted) samples.
func pct(samples []int64, p int) int64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]int64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (len(s)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return s[idx]
}
