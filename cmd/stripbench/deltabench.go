package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	strip "github.com/stripdb/strip"
	"github.com/stripdb/strip/internal/obs"
)

// The delta experiment measures O(|delta|) view maintenance against the
// O(|base|) full-rebuild baseline across a base-table size sweep. Both
// engines hold the same aggregation view (comp_prices-shaped: a grouped
// sum over stocks ⋈ comps_list) and absorb an identical, fixed-size
// update workload at every base size; only the maintenance mode differs.
// The headline numbers are the per-recompute virtual cost curves: delta
// maintenance should stay ~flat as the base grows 10x while the full
// rebuild grows linearly with it. Derived contents are asserted equal
// between the two modes at every size — a disagreement fails the run.

type deltaRun struct {
	Mode     string `json:"mode"` // delta or full
	BaseRows int    `json:"base_rows"`
	DimRows  int    `json:"dim_rows"`
	Groups   int    `json:"groups"`

	Batches  int   `json:"batches"`
	Updates  int   `json:"updates"`
	TasksRun int64 `json:"tasks_run"`

	WallMs float64 `json:"wall_ms"`
	// WorkMicros is the maintenance function's charged virtual CPU; the
	// per-task figure is the recompute cost the sweep plots.
	WorkMicros    float64 `json:"work_micros"`
	MicrosPerTask float64 `json:"micros_per_task"`

	DeltaApplied int64 `json:"delta_applied"`
	DeltaRows    int64 `json:"delta_rows"`
	Fallbacks    int64 `json:"delta_fallbacks"`
}

type deltaResult struct {
	Experiment string     `json:"experiment"`
	Scale      string     `json:"scale"`
	BaseSizes  []int      `json:"base_sizes"`
	Runs       []deltaRun `json:"runs"`

	// Speedup is full-mode per-task cost over delta-mode per-task cost at
	// the largest base size (> 1 means delta maintenance wins; the CI
	// delta job gates on it).
	Speedup float64 `json:"speedup"`
	// DeltaGrowth and FullGrowth are each mode's per-task cost at the
	// largest size over its cost at the smallest: ~1 is flat, ~N tracks
	// the N-fold base growth.
	DeltaGrowth float64 `json:"delta_growth"`
	FullGrowth  float64 `json:"full_growth"`
}

// deltaLoad builds one engine: base stocks rows, a dimension referencing
// every symbol into two of a fixed set of composite groups, and the
// materialized view in the requested mode.
func deltaLoad(mode strip.ViewMode, baseRows, groups int) (*strip.DB, int) {
	db := strip.MustOpen(strip.Config{Virtual: true})
	db.MustExec(`create table stocks (symbol text, price float)`)
	db.MustExec(`create index on stocks (symbol)`)
	db.MustExec(`create table comps_list (comp text, symbol text, weight float)`)
	db.MustExec(`create index on comps_list (symbol)`)
	for i := 0; i < baseRows; i++ {
		if err := db.Insert("stocks",
			strip.Str(fmt.Sprintf("S%06d", i)), strip.Float(20+float64(i%80))); err != nil {
			fail(err)
		}
	}
	dimRows := 0
	for i := 0; i < baseRows; i++ {
		for c := 0; c < 2; c++ {
			if err := db.Insert("comps_list",
				strip.Str(fmt.Sprintf("C%03d", (i*2+c)%groups)),
				strip.Str(fmt.Sprintf("S%06d", i)),
				strip.Float(0.25+float64(c)*0.5)); err != nil {
				fail(err)
			}
			dimRows++
		}
	}
	sel, err := strip.ParseSelect(`
		select comp, sum(price * weight) as price
		from stocks, comps_list
		where stocks.symbol = comps_list.symbol
		group by comp`)
	if err != nil {
		fail(err)
	}
	if _, err := db.CreateMaterializedView("comp_prices", sel, strip.ViewOptions{Mode: mode}); err != nil {
		fail(err)
	}
	return db, dimRows
}

// deltaWorkload drives the fixed update mix — batches of price updates on
// a rotating symbol subset — letting the maintenance rule settle after
// each batch, and returns the measured run.
func deltaWorkload(db *strip.DB, mode string, baseRows, dimRows, groups, batches, updates int) deltaRun {
	db.WaitIdle()
	before := db.Stats("maintain_comp_prices_fn")
	mBefore := db.Metrics().Counters
	start := time.Now()
	for b := 0; b < batches; b++ {
		for u := 0; u < updates; u++ {
			sym := fmt.Sprintf("S%06d", (b*updates*7+u*13)%baseRows)
			db.MustExec(fmt.Sprintf(`update stocks set price = %d where symbol = '%s'`,
				10+(b*updates+u)%90, sym))
		}
		db.WaitIdle()
	}
	wall := time.Since(start)
	after := db.Stats("maintain_comp_prices_fn")
	mAfter := db.Metrics().Counters

	run := deltaRun{
		Mode:         mode,
		BaseRows:     baseRows,
		DimRows:      dimRows,
		Groups:       groups,
		Batches:      batches,
		Updates:      batches * updates,
		TasksRun:     after.TasksRun - before.TasksRun,
		WallMs:       float64(wall.Microseconds()) / 1000,
		WorkMicros:   after.WorkMicros - before.WorkMicros,
		DeltaApplied: mAfter[obs.MDeltaApplied] - mBefore[obs.MDeltaApplied],
		DeltaRows:    mAfter[obs.MDeltaRows] - mBefore[obs.MDeltaRows],
		Fallbacks:    mAfter[obs.MDeltaFallbacks] - mBefore[obs.MDeltaFallbacks],
	}
	if after.TaskErrors != before.TaskErrors {
		fail(fmt.Errorf("delta bench: %s mode had %d task errors", mode, after.TaskErrors-before.TaskErrors))
	}
	if run.TasksRun > 0 {
		run.MicrosPerTask = run.WorkMicros / float64(run.TasksRun)
	}
	return run
}

// viewSnapshot reads the maintained view's groups.
func viewSnapshot(db *strip.DB) map[string]float64 {
	out := db.MustExec(`select comp, price from comp_prices`)
	got := make(map[string]float64, len(out.Rows))
	for _, r := range out.Rows {
		got[r[0].Str()] = r[1].Float()
	}
	return got
}

func runDeltaBench(metricsPath, scale string, progress func(string)) {
	sizes := []int{2000, 6000, 20000}
	groups, batches, updates := 40, 12, 8
	if scale == "small" {
		sizes = []int{500, 1500, 5000}
		batches = 8
	}
	res := deltaResult{Experiment: "delta", Scale: scale, BaseSizes: sizes}

	perTask := map[string]map[int]float64{"delta": {}, "full": {}}
	for _, baseRows := range sizes {
		snaps := map[string]map[string]float64{}
		for _, mode := range []string{"delta", "full"} {
			vm := strip.ViewModeDelta
			if mode == "full" {
				vm = strip.ViewModeFull
			}
			db, dimRows := deltaLoad(vm, baseRows, groups)
			run := deltaWorkload(db, mode, baseRows, dimRows, groups, batches, updates)
			snaps[mode] = viewSnapshot(db)
			db.Close() //nolint:errcheck
			res.Runs = append(res.Runs, run)
			perTask[mode][baseRows] = run.MicrosPerTask
			if progress != nil {
				progress(fmt.Sprintf("delta base=%-6d mode=%-5s tasks=%-3d µs/task=%.0f fallbacks=%d",
					baseRows, mode, run.TasksRun, run.MicrosPerTask, run.Fallbacks))
			}
		}
		// Equivalence gate: both modes must agree on every group.
		d, f := snaps["delta"], snaps["full"]
		if len(d) != len(f) {
			fail(fmt.Errorf("delta bench base=%d: delta view has %d groups, full has %d", baseRows, len(d), len(f)))
		}
		for k, fv := range f {
			dv, ok := d[k]
			if !ok || math.Abs(dv-fv) > 1e-6*(1+math.Abs(fv)) {
				fail(fmt.Errorf("delta bench base=%d group %s: delta=%v full=%v", baseRows, k, dv, fv))
			}
		}
	}

	small, large := sizes[0], sizes[len(sizes)-1]
	if perTask["delta"][large] > 0 {
		res.Speedup = perTask["full"][large] / perTask["delta"][large]
		res.DeltaGrowth = perTask["delta"][large] / perTask["delta"][small]
	}
	if perTask["full"][small] > 0 {
		res.FullGrowth = perTask["full"][large] / perTask["full"][small]
	}

	fmt.Printf("%-8s %10s %8s %14s %14s %10s\n", "mode", "base", "tasks", "work_µs", "µs/task", "fallbacks")
	for _, r := range res.Runs {
		fmt.Printf("%-8s %10d %8d %14.0f %14.0f %10d\n",
			r.Mode, r.BaseRows, r.TasksRun, r.WorkMicros, r.MicrosPerTask, r.Fallbacks)
	}
	fmt.Printf("speedup at base=%d (full/delta µs per recompute): %.1fx\n", large, res.Speedup)
	fmt.Printf("cost growth across %dx base sweep: delta %.2fx, full %.2fx\n",
		large/small, res.DeltaGrowth, res.FullGrowth)

	if metricsPath == "" {
		return
	}
	f, err := os.Create(metricsPath)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&res); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", metricsPath)
}
