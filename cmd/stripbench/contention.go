package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	strip "github.com/stripdb/strip"
	"github.com/stripdb/strip/internal/obs"
	"github.com/stripdb/strip/internal/query"
	"github.com/stripdb/strip/internal/types"
)

// The contention experiment measures how committed-transaction throughput
// scales with the worker-pool size when every transaction touches the same
// two tables. Before record-level locking the rule's recompute transactions
// serialized on table X locks regardless of worker count; with the sharded
// manager and per-row locks, updates to distinct symbols proceed in
// parallel and throughput should scale with workers.
//
// The workload is round-based so every worker count commits exactly the
// same transactions: each round updates every symbol's position price once
// (firing one unique recompute task per symbol), then waits for the engine
// to drain before the next round. Elapsed time is the only variable.

type contentionRun struct {
	Workers   int     `json:"workers"`
	Committed int64   `json:"committed"`
	ElapsedMs float64 `json:"elapsed_ms"`
	TPS       float64 `json:"tps"`
	Speedup   float64 `json:"speedup"`

	LockAcquires       int64   `json:"lock_acquires"`
	LockRecordAcquires int64   `json:"lock_record_acquires"`
	LockWaits          int64   `json:"lock_waits"`
	LockDeadlocks      int64   `json:"lock_deadlocks"`
	LockTimeouts       int64   `json:"lock_timeouts"`
	DetectorRuns       int64   `json:"detector_runs"`
	DetectorCycles     int64   `json:"detector_cycles"`
	Escalations        int64   `json:"escalations"`
	ShardLoads         []int64 `json:"shard_loads"`

	TaskErrors int64 `json:"task_errors"`
	Restarts   int64 `json:"restarts"`

	// Profiles carries each rule function's cost profile at the end of the
	// run, so the artifact captures rule-level cost (evaluate time, rows,
	// lock wait), not just aggregate tps.
	Profiles []strip.RuleProfile `json:"rule_profiles,omitempty"`
}

type contentionResult struct {
	Experiment  string          `json:"experiment"`
	Scale       string          `json:"scale"`
	Symbols     int             `json:"symbols"`
	Rounds      int             `json:"rounds"`
	ThinkMicros int             `json:"think_micros"`
	Runs        []contentionRun `json:"runs"`
}

// think parks the task for d while it holds its locks, modeling the
// recompute's work (the paper's actions spend hundreds of microseconds per
// firing). A worker running a thinking task is busy for the duration, so
// with one worker tasks serialize; with N workers up to N tasks overlap —
// but only if their locks are disjoint. Under table-granularity X locks a
// blocked task stalls its worker and the sweep stays flat, so the curve
// directly measures lock granularity rather than host core count.
func think(d time.Duration) { time.Sleep(d) }

func parseWorkers(spec string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty worker list")
	}
	return out, nil
}

// contentionOnce runs the full round-based workload on a fresh live engine
// with w workers and reports the run's committed count and lock statistics.
func contentionOnce(w, symbols, rounds int, thinkWork time.Duration) (contentionRun, error) {
	db := strip.MustOpen(strip.Config{Workers: w})
	defer db.Close()

	db.MustExec(`create table positions (symbol text, qty int, price float)`)
	db.MustExec(`create index on positions (symbol)`)
	db.MustExec(`create table portfolio (symbol text, value float)`)
	db.MustExec(`create index on portfolio (symbol)`)
	for i := 0; i < symbols; i++ {
		db.MustExec(fmt.Sprintf(`insert into positions values ('S%03d', %d, 100)`, i, 10+i%7))
		db.MustExec(fmt.Sprintf(`insert into portfolio values ('S%03d', %g)`, i, float64(10+i%7)*100))
	}

	if err := db.RegisterFunc("revalue", func(ctx *strip.ActionContext) error {
		m, _ := ctx.Bound("changes")
		for i := 0; i < m.Len(); i++ {
			sch := m.Schema()
			sym := m.Value(i, sch.ColIndex("symbol"))
			rows, _, err := strip.QueryAction(ctx, fmt.Sprintf(
				`select qty, price from positions where symbol = '%v'`, sym))
			if err != nil {
				return err
			}
			value := 0.0
			for _, r := range rows {
				value += float64(r[0].Int()) * r[1].Float()
			}
			// Update before thinking so the portfolio row's X lock is
			// held for the task's full duration — the worst case for a
			// coarse-grained lock manager.
			if _, err := strip.ExecAction(ctx, fmt.Sprintf(
				`update portfolio set value = %g where symbol = '%v'`, value, sym)); err != nil {
				return err
			}
			think(thinkWork)
		}
		return nil
	}); err != nil {
		return contentionRun{}, err
	}
	db.MustExec(`
	  create rule revalue_portfolio on positions
	  when updated price
	  if select symbol, price from new bind as changes
	  then execute revalue
	  unique on symbol`)

	// The driver pool size is fixed (independent of the engine's worker
	// count) so feeding updates costs the same in every run; only the
	// recompute tasks' execution varies with Workers.
	const drivers = 4
	base := db.Txns().Committed()
	start := time.Now()
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		errs := make(chan error, drivers)
		for g := 0; g < drivers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for s := g; s < symbols; s += drivers {
					stmt := &query.UpdateStmt{
						Table: "positions",
						Set: []query.SetClause{{
							Col: "price", Expr: query.Const(types.Float(0.25)), AddTo: true,
						}},
						Where: []query.Pred{query.Eq(
							query.Col("symbol"),
							query.Const(types.Str(fmt.Sprintf("S%03d", s))))},
					}
					tx := db.Begin()
					if _, err := stmt.Run(tx); err != nil {
						tx.Abort()
						errs <- err
						return
					}
					if err := tx.Commit(); err != nil {
						errs <- err
						return
					}
				}
			}(g)
		}
		wg.Wait()
		select {
		case err := <-errs:
			return contentionRun{}, err
		default:
		}
		// Barrier on the committed count, not just queue emptiness:
		// WaitIdle can observe the instant between a driver commit and
		// its task enqueue, and an early return would let next-round
		// firings merge into still-queued tasks, skewing the totals.
		// Each round commits `symbols` driver txns plus `symbols`
		// recompute txns.
		target := int64((r + 1) * symbols * 2)
		for db.Txns().Committed()-base < target {
			db.WaitIdle()
			time.Sleep(50 * time.Microsecond)
		}
	}
	elapsed := time.Since(start)

	st := db.Stats("revalue")
	ls := db.LockStats()
	snap := db.Metrics()
	committed := db.Txns().Committed() - base
	run := contentionRun{
		Workers:   w,
		Committed: committed,
		ElapsedMs: float64(elapsed.Microseconds()) / 1000,
		TPS:       float64(committed) / elapsed.Seconds(),

		LockAcquires:       ls.Acquires,
		LockRecordAcquires: ls.RecordAcquires,
		LockWaits:          ls.Waits,
		LockDeadlocks:      ls.Deadlocks,
		LockTimeouts:       ls.Timeouts,
		DetectorRuns:       ls.DetectorRuns,
		DetectorCycles:     ls.DetectorCycles,
		Escalations:        snap.Counters[obs.MLockEscalations],
		ShardLoads:         db.LockShardLoads(),

		TaskErrors: st.TaskErrors,
		Restarts:   st.Restarts,

		Profiles: db.RuleProfiles(),
	}
	if st.TaskErrors != 0 {
		return run, fmt.Errorf("workers=%d: %d task errors (%d restarts)",
			w, st.TaskErrors, st.Restarts)
	}
	return run, nil
}

func runContention(metricsPath, scale, workersSpec string, progress func(string)) {
	workers, err := parseWorkers(workersSpec)
	if err != nil {
		fail(err)
	}
	symbols, rounds := 48, 12
	thinkWork := 500 * time.Microsecond
	if scale == "small" {
		symbols, rounds = 24, 4
	}

	res := contentionResult{
		Experiment:  "contention",
		Scale:       scale,
		Symbols:     symbols,
		Rounds:      rounds,
		ThinkMicros: int(thinkWork / time.Microsecond),
	}
	var baseTPS float64
	for _, w := range workers {
		run, err := contentionOnce(w, symbols, rounds, thinkWork)
		if err != nil {
			fail(err)
		}
		if baseTPS == 0 {
			baseTPS = run.TPS
		}
		run.Speedup = run.TPS / baseTPS
		res.Runs = append(res.Runs, run)
		if progress != nil {
			progress(fmt.Sprintf("contention workers=%d committed=%d elapsed=%.1fms tps=%.0f speedup=%.2fx waits=%d",
				w, run.Committed, run.ElapsedMs, run.TPS, run.Speedup, run.LockWaits))
		}
	}

	fmt.Printf("%-8s %10s %12s %10s %8s %8s %12s\n",
		"workers", "committed", "elapsed_ms", "tps", "speedup", "waits", "rec_locks")
	for _, r := range res.Runs {
		fmt.Printf("%-8d %10d %12.1f %10.0f %7.2fx %8d %12d\n",
			r.Workers, r.Committed, r.ElapsedMs, r.TPS, r.Speedup, r.LockWaits, r.LockRecordAcquires)
	}

	if metricsPath == "" {
		return
	}
	f, err := os.Create(metricsPath)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&res); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", metricsPath)
}
