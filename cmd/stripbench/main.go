// Command stripbench regenerates the paper's evaluation (Figures 9–14 and
// the Table 1 timings) on the virtual-clock engine.
//
// Usage:
//
//	stripbench -exp all                 # everything, paper scale
//	stripbench -exp fig9 -scale small   # one figure, reduced scale
//	stripbench -exp table1
//	stripbench -exp sched               # scheduler-policy ablation
//	stripbench -exp locality            # burstiness sweep ablation
//	stripbench -exp fig13 -include-option-symbol
//	stripbench -exp contention -workers 1,2,4,8   # lock-scaling sweep
//	stripbench -exp mvcc                # snapshot-read scan-vs-writer sweep
//	stripbench -exp overload            # feed-rate ramp vs shedding policy
//	stripbench -exp join                # planner join-order comparison
//	stripbench -exp serve               # stripd open-loop client sweep
//	stripbench -exp delta               # delta vs full view maintenance sweep
//	stripbench -exp repl                # read scale-out across WAL-shipping replicas
//
// Paper-scale runs replay ≈60,000 updates per (variant, delay) point and
// take a few minutes in total; -scale small completes in seconds.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/stripdb/strip/internal/cost"
	"github.com/stripdb/strip/internal/ptabench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, comps, options, fig9..fig14, table1, sched, locality, taper, wal, contention, mvcc, overload, join, serve, delta, repl")
	scale := flag.String("scale", "paper", "workload scale: paper or small")
	includeOptSym := flag.Bool("include-option-symbol", false,
		"also run the unique-on-option_symbol configuration (the paper found it unmanageable)")
	quiet := flag.Bool("q", false, "suppress per-run progress")
	metricsPath := flag.String("metrics", "BENCH_metrics.json",
		"write a per-run metrics artifact (throughput, p95/p99 action latency, max staleness) to this file; empty disables")
	workers := flag.String("workers", "1,2,4,8",
		"comma-separated worker-pool sizes for -exp contention")
	flag.Parse()

	wcfg := ptabench.PaperScale()
	if *scale == "small" {
		wcfg = ptabench.SmallScale()
	} else if *scale != "paper" {
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	progress := func(s string) { fmt.Fprintln(os.Stderr, s) }
	if *quiet {
		progress = nil
	}

	switch *exp {
	case "table1":
		printTable1()
	case "wal":
		runWalBench(*metricsPath, progress)
	case "contention":
		// The lock-scaling sweep gets its own artifact so it never
		// clobbers the figure metrics from other experiments.
		path := *metricsPath
		if path == "BENCH_metrics.json" {
			path = "BENCH_contention.json"
		}
		runContention(path, *scale, *workers, progress)
	case "mvcc":
		path := *metricsPath
		if path == "BENCH_metrics.json" {
			path = "BENCH_mvcc.json"
		}
		runMvcc(path, *scale, progress)
	case "overload":
		path := *metricsPath
		if path == "BENCH_metrics.json" {
			path = "BENCH_overload.json"
		}
		runOverload(path, *scale, progress)
	case "join":
		path := *metricsPath
		if path == "BENCH_metrics.json" {
			path = "BENCH_join.json"
		}
		runJoinBench(path, *scale, progress)
	case "serve":
		path := *metricsPath
		if path == "BENCH_metrics.json" {
			path = "BENCH_serve.json"
		}
		runServeBench(path, *scale, progress)
	case "delta":
		path := *metricsPath
		if path == "BENCH_metrics.json" {
			path = "BENCH_delta.json"
		}
		runDeltaBench(path, *scale, progress)
	case "repl":
		path := *metricsPath
		if path == "BENCH_metrics.json" {
			path = "BENCH_repl.json"
		}
		runReplBench(path, *scale, progress)
	case "sched":
		if err := ptabench.RunSchedAblation(os.Stdout, wcfg, progress); err != nil {
			fail(err)
		}
	case "locality":
		if err := ptabench.RunLocalityAblation(os.Stdout, wcfg, progress); err != nil {
			fail(err)
		}
	case "taper":
		if err := ptabench.RunTaperAblation(os.Stdout, wcfg, progress); err != nil {
			fail(err)
		}
	case "all":
		printTable1()
		er1 := runFigures(wcfg, []string{"fig9", "fig10", "fig11"}, *includeOptSym, progress)
		er2 := runFigures(wcfg, []string{"fig12", "fig13", "fig14"}, *includeOptSym, progress)
		er1.Runs = append(er1.Runs, er2.Runs...)
		writeMetrics(*metricsPath, er1)
	case "comps", "fig9", "fig10", "fig11":
		ids := []string{"fig9", "fig10", "fig11"}
		if *exp != "comps" {
			ids = []string{*exp}
		}
		writeMetrics(*metricsPath, runFigures(wcfg, ids, *includeOptSym, progress))
	case "options", "fig12", "fig13", "fig14":
		ids := []string{"fig12", "fig13", "fig14"}
		if *exp != "options" {
			ids = []string{*exp}
		}
		writeMetrics(*metricsPath, runFigures(wcfg, ids, *includeOptSym, progress))
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func runFigures(wcfg ptabench.WorkloadConfig, ids []string, includeOptSym bool, progress func(string)) *ptabench.ExperimentResult {
	comp := ids[0] == "fig9" || ids[0] == "fig10" || ids[0] == "fig11"
	variants := ptabench.CompVariants()
	if !comp {
		variants = ptabench.OptionVariants(includeOptSym)
	}
	er, err := ptabench.RunExperiment(wcfg, variants, ptabench.DefaultDelays(), progress)
	if err != nil {
		fail(err)
	}
	fmt.Println()
	er.WriteSummary(os.Stdout)
	for _, id := range ids {
		fmt.Println()
		if err := er.WriteFigure(os.Stdout, id); err != nil {
			fail(err)
		}
	}
	return er
}

// writeMetrics dumps the experiment's per-run metrics artifact so future
// changes have a perf trajectory to compare against.
func writeMetrics(path string, er *ptabench.ExperimentResult) {
	if path == "" || er == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := er.WriteMetricsJSON(f); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "wrote metrics artifact: %s (%d runs)\n", path, len(er.Runs))
}

func printTable1() {
	m := cost.Default()
	fmt.Println("Table 1: basic STRIP operation costs (virtual cost model, µs)")
	rows := []struct {
		name string
		val  float64
	}{
		{"begin task", m.BeginTask},
		{"begin transaction", m.BeginTxn},
		{"get lock", m.GetLock},
		{"open cursor", m.OpenCursor},
		{"fetch cursor", m.FetchCursor},
		{"update via cursor", m.UpdateCursor},
		{"close cursor", m.CloseCursor},
		{"release lock", m.ReleaseLock},
		{"commit transaction", m.CommitTxn},
		{"end task", m.EndTask},
	}
	for _, r := range rows {
		fmt.Printf("  %-22s %6.0f\n", r.name, r.val)
	}
	fmt.Printf("  %-22s %6.0f  (=> %.0f TPS)\n", "simple 1-tuple update",
		m.SimpleUpdateCost(), 1e6/m.SimpleUpdateCost())
	fmt.Println("  (run `go test -bench Table1 .` for measured Go-level timings)")
	fmt.Println()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "stripbench:", err)
	os.Exit(1)
}
