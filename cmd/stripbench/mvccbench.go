package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	strip "github.com/stripdb/strip"
	"github.com/stripdb/strip/internal/query"
	"github.com/stripdb/strip/internal/types"
)

// The mvcc experiment measures scan-vs-writer interference. A full-table
// scanner runs against w concurrent single-row writers in two read modes:
//
//   - locked:   scans in a writable transaction, taking the table S lock —
//     the pre-MVCC read path. Every scan serializes against every
//     writer's IX/X locks, so both curves collapse as w grows.
//   - snapshot: scans in a read-only transaction over the version chains —
//     lock-free. Scan throughput should hold near its writer-free
//     level, and writers should run at their scanner-free rate.
//
// Scanner-free writer runs (mode "writeonly") anchor the writer baseline.
//
// Both sides run closed-loop with think time (as the contention experiment
// does): each scan and each commit is followed by a pause, so neither side
// can saturate the host CPU and the measured throughput deltas isolate
// lock blocking rather than core-count contention.

type mvccRun struct {
	Mode     string `json:"mode"` // writeonly, locked, snapshot
	Writers  int    `json:"writers"`
	Scanners int    `json:"scanners"`

	Scans       int64   `json:"scans"`
	ScansPerSec float64 `json:"scans_per_sec"`

	WriterCommits int64   `json:"writer_commits"`
	WriterTPS     float64 `json:"writer_tps"`

	LockAcquires int64 `json:"lock_acquires"`
	LockWaits    int64 `json:"lock_waits"`

	SnapshotScans    int64  `json:"snapshot_scans"`
	GCRuns           int64  `json:"gc_runs"`
	GCDropped        int64  `json:"gc_dropped"`
	VersionsRetained int64  `json:"versions_retained_end"`
	LastVisibleLSN   uint64 `json:"last_visible_lsn"`

	// Profiles keeps the artifact schema uniform across experiments; the
	// mvcc workload installs no rules, so this is normally omitted.
	Profiles []strip.RuleProfile `json:"rule_profiles,omitempty"`
}

type mvccResult struct {
	Experiment string    `json:"experiment"`
	Scale      string    `json:"scale"`
	Rows       int       `json:"rows"`
	DurationMs float64   `json:"duration_ms"`
	Runs       []mvccRun `json:"runs"`

	// ScanRetention: snapshot scan rate at the writer sweep's maximum,
	// relative to the writer-free snapshot rate. WriterRetention: snapshot-
	// mode writer rate at max writers relative to the scanner-free rate.
	ScanRetention   float64 `json:"scan_retention"`
	WriterRetention float64 `json:"writer_retention"`
}

// Think times for the closed loops: scanners pause thinkScan between
// scans, writers pause thinkWrite between commits.
const (
	thinkScan  = 400 * time.Microsecond
	thinkWrite = 150 * time.Microsecond
)

// mvccOnce runs one (mode, writers) cell on a fresh database for roughly d
// and reports both sides' throughput.
func mvccOnce(mode string, writers, rows int, d time.Duration) (mvccRun, error) {
	db := strip.MustOpen(strip.Config{Workers: 2})
	defer db.Close()

	db.MustExec(`create table stocks (symbol text, price float)`)
	db.MustExec(`create index on stocks (symbol)`)
	for i := 0; i < rows; i++ {
		db.MustExec(fmt.Sprintf(`insert into stocks values ('S%04d', 100)`, i))
	}

	scan := &query.Select{
		Items: []query.SelectItem{query.Item(query.Col("symbol"), ""), query.Item(query.Col("price"), "")},
		From:  []string{"stocks"},
	}
	scanners := 1
	if mode == "writeonly" {
		scanners = 0
	}

	var stop atomic.Bool
	var scans, commits atomic.Int64
	errCh := make(chan error, scanners+writers)
	var wg sync.WaitGroup

	for s := 0; s < scanners; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				var tx *strip.Txn
				if mode == "snapshot" {
					tx = db.BeginReadOnly()
				} else {
					tx = db.Begin()
				}
				res, err := scan.Run(tx, query.TxnResolver{})
				if err != nil {
					tx.Abort() //nolint:errcheck
					errCh <- err
					return
				}
				n := res.Len()
				res.Retire()
				// Process the result inside the transaction, as a report or
				// rule recompute would. The locked mode holds the table S
				// lock for the whole pause — the pre-MVCC cost of a long
				// reader; the snapshot mode holds nothing.
				think(thinkScan)
				if err := tx.Commit(); err != nil {
					errCh <- err
					return
				}
				if n != rows {
					errCh <- fmt.Errorf("scan saw %d rows, want %d", n, rows)
					return
				}
				scans.Add(1)
			}
		}()
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each writer owns a symbol partition: no write-write conflicts,
			// so interference measured here is reader-vs-writer only.
			for i := 0; !stop.Load(); i++ {
				sym := fmt.Sprintf("S%04d", (w+i*writers)%rows)
				stmt := &query.UpdateStmt{
					Table: "stocks",
					Set:   []query.SetClause{{Col: "price", Expr: query.Const(types.Float(0.25)), AddTo: true}},
					Where: []query.Pred{query.Eq(query.Col("symbol"), query.Const(types.Str(sym)))},
				}
				tx := db.Begin()
				if _, err := stmt.Run(tx); err != nil {
					tx.Abort() //nolint:errcheck
					errCh <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errCh <- err
					return
				}
				commits.Add(1)
				think(thinkWrite)
			}
		}(w)
	}

	start := time.Now()
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return mvccRun{}, err
	default:
	}

	db.Txns().RunVersionGC()
	ls := db.LockStats()
	ms := db.MvccStats()
	return mvccRun{
		Mode:          mode,
		Writers:       writers,
		Scanners:      scanners,
		Scans:         scans.Load(),
		ScansPerSec:   float64(scans.Load()) / elapsed.Seconds(),
		WriterCommits: commits.Load(),
		WriterTPS:     float64(commits.Load()) / elapsed.Seconds(),

		LockAcquires: ls.Acquires,
		LockWaits:    ls.Waits,

		SnapshotScans:    ms.SnapshotScans,
		GCRuns:           ms.GCRuns,
		GCDropped:        ms.GCDropped,
		VersionsRetained: ms.VersionsRetained,
		LastVisibleLSN:   ms.LastVisibleLSN,

		Profiles: db.RuleProfiles(),
	}, nil
}

func runMvcc(metricsPath, scale string, progress func(string)) {
	rows := 512
	d := 1200 * time.Millisecond
	if scale == "small" {
		rows, d = 128, 250*time.Millisecond
	}
	writerSweep := []int{0, 1, 2, 4}

	res := mvccResult{
		Experiment: "mvcc",
		Scale:      scale,
		Rows:       rows,
		DurationMs: float64(d.Microseconds()) / 1000,
	}
	emit := func(r mvccRun) {
		res.Runs = append(res.Runs, r)
		if progress != nil {
			progress(fmt.Sprintf("mvcc mode=%-9s writers=%d scans/s=%.0f writer_tps=%.0f waits=%d versions=%d",
				r.Mode, r.Writers, r.ScansPerSec, r.WriterTPS, r.LockWaits, r.VersionsRetained))
		}
	}

	var writeonlyAt = map[int]float64{}
	for _, w := range []int{1, 2, 4} {
		run, err := mvccOnce("writeonly", w, rows, d)
		if err != nil {
			fail(err)
		}
		writeonlyAt[w] = run.WriterTPS
		emit(run)
	}
	var lockedScan0, snapScan0, snapScanMax, snapWriteMax float64
	maxW := writerSweep[len(writerSweep)-1]
	for _, mode := range []string{"locked", "snapshot"} {
		for _, w := range writerSweep {
			run, err := mvccOnce(mode, w, rows, d)
			if err != nil {
				fail(err)
			}
			switch {
			case mode == "locked" && w == 0:
				lockedScan0 = run.ScansPerSec
			case mode == "snapshot" && w == 0:
				snapScan0 = run.ScansPerSec
			case mode == "snapshot" && w == maxW:
				snapScanMax = run.ScansPerSec
				snapWriteMax = run.WriterTPS
			}
			emit(run)
		}
	}
	if snapScan0 > 0 {
		res.ScanRetention = snapScanMax / snapScan0
	}
	if writeonlyAt[maxW] > 0 {
		res.WriterRetention = snapWriteMax / writeonlyAt[maxW]
	}

	fmt.Printf("%-10s %8s %12s %12s %10s %10s\n",
		"mode", "writers", "scans/s", "writer_tps", "waits", "versions")
	for _, r := range res.Runs {
		fmt.Printf("%-10s %8d %12.0f %12.0f %10d %10d\n",
			r.Mode, r.Writers, r.ScansPerSec, r.WriterTPS, r.LockWaits, r.VersionsRetained)
	}
	fmt.Printf("scan retention at %d writers: %.2f (snapshot; writer-free locked scan rate %.0f/s)\n",
		maxW, res.ScanRetention, lockedScan0)
	fmt.Printf("writer retention under scan: %.2f\n", res.WriterRetention)

	if metricsPath == "" {
		return
	}
	f, err := os.Create(metricsPath)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&res); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", metricsPath)
}
