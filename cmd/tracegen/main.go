// Command tracegen generates synthetic market-quote traces (the TAQ
// substitute described in DESIGN.md) and writes them as CSV.
//
// Usage:
//
//	tracegen -out trace.csv                     # paper scale
//	tracegen -stocks 660 -minutes 2 -updates 4000 -seed 7 -out small.csv
//	tracegen -stats trace.csv                   # summarize an existing trace
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/stripdb/strip/internal/clock"
	"github.com/stripdb/strip/internal/feed"
)

func main() {
	out := flag.String("out", "", "output CSV path (default stdout)")
	stocks := flag.Int("stocks", 6600, "number of stocks")
	minutes := flag.Float64("minutes", 30, "trace duration in minutes")
	updates := flag.Int("updates", 60000, "target number of quotes")
	skew := flag.Float64("skew", 0.3, "activity power-law exponent")
	burst := flag.Float64("burst", 0.26, "burst-follower probability")
	gapMs := flag.Int("gap-ms", 900, "mean intra-burst gap in ms")
	seed := flag.Int64("seed", 1, "random seed")
	stats := flag.String("stats", "", "summarize an existing trace CSV instead of generating")
	flag.Parse()

	if *stats != "" {
		f, err := os.Open(*stats)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		tr, err := feed.ReadCSV(f)
		if err != nil {
			fail(err)
		}
		printStats(tr)
		return
	}

	cfg := feed.Config{
		NumStocks:        *stocks,
		Duration:         clock.FromSeconds(*minutes * 60),
		TargetUpdates:    *updates,
		ActivityExponent: *skew,
		BurstFollowProb:  *burst,
		BurstGap:         clock.Micros(*gapMs) * 1000,
		Seed:             *seed,
	}
	tr, err := feed.Generate(cfg)
	if err != nil {
		fail(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := tr.WriteCSV(w); err != nil {
		fail(err)
	}
	if *out != "" {
		printStats(tr)
	}
}

func printStats(tr *feed.Trace) {
	st := tr.Stats()
	fmt.Fprintf(os.Stderr, "quotes: %d  stocks traded: %d  rate: %.1f/s  burst fraction: %.2f\n",
		st.Updates, st.DistinctStocks, st.MeanRate, st.BurstFraction)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
