// Command stripd runs a standalone STRIP network server: an engine opened
// with Config.ListenAddr, serving the binary wire protocol to package
// client (and strip-cli -connect), with stripmon on the side for
// observability.
//
//	stripd -listen :9629 -monitor :9620 -data /var/lib/strip
//
// Clients get per-session interactive transactions with idle reaping,
// admission control (connection caps, per-tenant in-flight limits, and —
// with -shed-depth — shedding on engine saturation), and shared snapshot
// query execution: compatible read-only queries arriving within the gather
// window run as one snapshot scan at a single LSN.
//
// With -replica-of the engine instead runs as a warm-standby replica: it
// streams the primary's WAL, replays it continuously, and serves read-only
// queries at its applied LSN (writes are refused with the replica code).
// SIGUSR1 promotes it to a standalone writable primary, stamping a fencing
// epoch that rejects the deposed primary.
//
// SIGINT/SIGTERM drain gracefully: new work is rejected with the
// shutting-down code while in-flight session transactions commit or abort,
// then the engine closes (flushing the WAL when -data is set).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	strip "github.com/stripdb/strip"
)

func main() {
	listen := flag.String("listen", ":9629", "wire-protocol listen address")
	monitor := flag.String("monitor", "", "stripmon HTTP listen address (e.g. :9620); empty disables")
	dataDir := flag.String("data", "", "durable data directory (WAL + snapshots); empty keeps the engine in-memory")
	workers := flag.Int("workers", 4, "rule-engine worker pool size")
	auth := flag.String("auth", "", "require this auth token from every client handshake")
	maxConns := flag.Int("max-conns", 0, "concurrent session cap (0 = default 256)")
	maxInflight := flag.Int("max-inflight", 0, "global concurrent statement cap (0 = default 64)")
	tenantInflight := flag.Int("tenant-inflight", 0, "per-tenant concurrent statement cap (0 = global cap)")
	idleTxn := flag.Duration("idle-txn", 30*time.Second, "abort interactive transactions idle this long (releases their locks)")
	shareWindow := flag.Duration("share-window", 2*time.Millisecond, "gather window for shared snapshot query execution; 0 disables sharing")
	shedDepth := flag.Int("shed-depth", 0, "engine ready-queue depth past which admission control sheds (0 disables)")
	drain := flag.Duration("drain", 5*time.Second, "shutdown drain window for in-flight session transactions")
	replicaOf := flag.String("replica-of", "", "run as a read-only replica of the primary stripd at this address (requires -data); SIGUSR1 promotes")
	replicaToken := flag.String("replica-token", "", "auth token presented to the primary (default: the -auth token)")
	flag.Parse()

	replToken := *replicaToken
	if replToken == "" {
		replToken = *auth
	}
	db, err := strip.Open(strip.Config{
		Workers:     *workers,
		DataDir:     *dataDir,
		MonitorAddr: *monitor,
		ListenAddr:  *listen,
		Overload:    strip.OverloadPolicy{ShedDepth: *shedDepth},
		ReplicaOf:   *replicaOf,
		Repl:        strip.ReplOptions{AuthToken: replToken},
		Serve: strip.ServeOptions{
			AuthToken:      *auth,
			MaxConns:       *maxConns,
			MaxInflight:    *maxInflight,
			TenantInflight: *tenantInflight,
			IdleTxnTimeout: *idleTxn,
			ShareWindow:    *shareWindow,
			DrainTimeout:   *drain,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "stripd:", err)
		os.Exit(1)
	}

	// The same generic rule action the interactive shell registers, so SQL
	// rule definitions work against a remote server too.
	if err := db.RegisterFunc("print_changes", func(ctx *strip.ActionContext) error {
		for _, name := range ctx.BoundNames() {
			tt, _ := ctx.Bound(name)
			fmt.Printf("[print_changes] %s: %d row(s)\n", name, tt.Len())
		}
		return nil
	}); err != nil {
		fmt.Fprintln(os.Stderr, "stripd:", err)
		os.Exit(1)
	}

	fmt.Printf("stripd serving on %s\n", db.ServerAddr())
	if addr := db.MonitorAddr(); addr != "" {
		fmt.Printf("stripmon listening on http://%s (metrics, debug/trace, debug/rules, debug/sessions)\n", addr)
	}
	if *dataDir != "" {
		r := db.LastRecovery()
		fmt.Printf("recovered %s: %d table(s), %d row(s) from snapshot; %d txn(s) replayed\n",
			*dataDir, r.SnapshotTables, r.SnapshotRows, r.ReplayedTxns)
	}

	if *replicaOf != "" {
		fmt.Printf("replicating from %s (read-only; SIGUSR1 promotes)\n", *replicaOf)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM, syscall.SIGUSR1)
	var s os.Signal
	for s = range sig {
		if s != syscall.SIGUSR1 {
			break
		}
		// Failover: promote this replica to a standalone writable primary.
		// The bumped fencing epoch rejects the deposed primary if it comes
		// back.
		epoch, err := db.Promote()
		if err != nil {
			fmt.Fprintln(os.Stderr, "stripd: promote:", err)
			continue
		}
		fmt.Printf("stripd: promoted to primary at fencing epoch %d\n", epoch)
	}
	fmt.Printf("stripd: %v — draining sessions and closing\n", s)
	if err := db.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "stripd: close:", err)
		os.Exit(1)
	}
}
