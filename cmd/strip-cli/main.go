// Command strip-cli is an interactive shell over an in-process STRIP
// engine: type SQL (including CREATE RULE) and inspect rule activity.
//
// Because rule actions are Go functions, the CLI registers a generic
// `print_changes` action that dumps its bound tables, so rule batching can
// be explored interactively:
//
//	strip> create table t (k text, v float)
//	strip> create rule r on t when inserted
//	       if select * from inserted bind as rows
//	       then execute print_changes unique after 1 seconds
//	strip> insert into t values ('a', 1)
//	strip> insert into t values ('b', 2)
//	...
//	[print_changes] rows: 2 row(s)
//
// With -data <dir> the session is durable: every commit reaches a
// write-ahead log before it is acknowledged, \checkpoint snapshots the
// database, and restarting with the same -data restores tables, indexes,
// and catalog.
//
// Meta commands: \tables, \stats <function>, \metrics [json], \trace [n],
// \profile, \span <traceID>, \checkpoint, \wal, \quit. With -monitor
// <addr> the stripmon HTTP surface (/metrics, /debug/trace, /debug/rules,
// /debug/pprof) serves the same session.
//
// With -connect <host:port> the shell instead speaks the stripd wire
// protocol to a remote server: SQL statements travel as QUERY/EXEC frames,
// and \begin, \commit, \abort control the session's interactive
// transaction (idle transactions are reaped server-side). -token and
// -tenant set the handshake credentials.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	strip "github.com/stripdb/strip"
	"github.com/stripdb/strip/client"
)

func main() {
	dataDir := flag.String("data", "", "durable data directory (WAL + snapshots); empty keeps the session in-memory")
	monitor := flag.String("monitor", "", "stripmon HTTP listen address (e.g. :9620); empty disables")
	connect := flag.String("connect", "", "remote stripd address (host:port); empty runs an in-process engine")
	token := flag.String("token", "", "auth token for -connect (and -replica-of)")
	tenant := flag.String("tenant", "", "tenant name for -connect (and -replica-of)")
	replicaOf := flag.String("replica-of", "", "replicate the in-process engine from the primary stripd at this address (read-only; requires -data)")
	flag.Parse()

	if *connect != "" {
		remoteShell(*connect, *token, *tenant)
		return
	}

	db, err := strip.Open(strip.Config{
		Workers:     2,
		DataDir:     *dataDir,
		MonitorAddr: *monitor,
		ReplicaOf:   *replicaOf,
		Repl:        strip.ReplOptions{AuthToken: *token, Tenant: *tenant},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "strip-cli:", err)
		os.Exit(1)
	}
	defer db.Close()
	if addr := db.MonitorAddr(); addr != "" {
		fmt.Printf("stripmon listening on http://%s (metrics, debug/trace, debug/rules, debug/pprof)\n", addr)
	}
	if *dataDir != "" {
		r := db.LastRecovery()
		fmt.Printf("recovered %s: %d table(s), %d row(s) from snapshot; %d txn(s) replayed from log in %d µs\n",
			*dataDir, r.SnapshotTables, r.SnapshotRows, r.ReplayedTxns, r.DurationMicros)
	}

	if err := db.RegisterFunc("print_changes", func(ctx *strip.ActionContext) error {
		for _, name := range ctx.BoundNames() {
			tt, _ := ctx.Bound(name)
			fmt.Printf("[print_changes] %s: %d row(s)\n", name, tt.Len())
			for i := 0; i < tt.Len() && i < 10; i++ {
				fmt.Printf("  %v\n", tt.Row(i))
			}
		}
		return nil
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("STRIP shell — SQL statements end at newline; \\help for meta commands.")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("strip> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\quit` || line == `\q`:
			return
		case line == `\help`:
			fmt.Println(`meta commands:
  \tables            list tables
  \stats <function>  rule activity counters (incl. pending unique txns)
  \explain <select>  run the query and show its physical plan (est vs actual rows)
  \metrics [json]    engine metrics snapshot (text, or JSON)
  \trace [n]         recent engine trace events (default 20)
  \profile           per-rule cost profiles (eval time, rows, lock wait, SLO)
  \span <traceID>    causal chain for one triggering transaction id
  \checkpoint        force a snapshot and truncate the write-ahead log
  \wal               write-ahead log status (size, fsyncs, last recovery)
  \repl              replication status (replica engines; see -replica-of)
  \promote           promote this replica to a writable primary (failover)
  \quit`)
			continue
		case line == `\repl`:
			st, ok := db.ReplStatus()
			if !ok {
				fmt.Println("not a replica (start with -replica-of <addr>)")
				continue
			}
			fmt.Printf("  primary       %s (connected=%v resyncing=%v fenced=%v promoted=%v)\n",
				st.Primary, st.Connected, st.Resyncing, st.Fenced, st.Promoted)
			fmt.Printf("  epoch         %d\n", st.Epoch)
			fmt.Printf("  applied lsn   %d (primary %d, lag %d records)\n", st.AppliedLSN, st.PrimaryLSN, st.LagLSN)
			if st.LagMicros >= 0 {
				fmt.Printf("  lag           %d µs\n", st.LagMicros)
			} else {
				fmt.Println("  lag           unknown (no batch received yet)")
			}
			fmt.Printf("  reconnects    %d, resyncs %d\n", st.Reconnects, st.Resyncs)
			if st.LastError != "" {
				fmt.Printf("  last error    %s\n", st.LastError)
			}
			continue
		case line == `\promote`:
			epoch, err := db.Promote()
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("promoted to primary at fencing epoch %d; writes accepted\n", epoch)
			continue
		case line == `\checkpoint`:
			if err := db.Checkpoint(); err != nil {
				fmt.Println("error:", err)
				continue
			}
			info, _ := db.WalInfo()
			fmt.Printf("checkpoint ok (log truncated to %d bytes)\n", info.LogBytes)
			continue
		case line == `\wal`:
			info, ok := db.WalInfo()
			if !ok {
				fmt.Println("durability disabled (start with -data <dir>)")
				continue
			}
			fmt.Printf("  data dir      %s\n", info.Dir)
			fmt.Printf("  log size      %d bytes (next LSN %d)\n", info.LogBytes, info.NextLSN)
			fmt.Printf("  appends       %d records, %d fsyncs, %d checkpoint(s)\n",
				info.Appends, info.Fsyncs, info.Checkpoints)
			if info.GroupBatch.Count > 0 {
				fmt.Printf("  group commit  batch p50=%d p95=%d max=%d; fsync p50=%dµs p95=%dµs\n",
					info.GroupBatch.P50, info.GroupBatch.P95, info.GroupBatch.Max,
					info.FsyncMicros.P50, info.FsyncMicros.P95)
			}
			r := info.Recovery
			fmt.Printf("  last recovery snapshot lsn=%d (%d tables, %d rows), %d txn(s)/%d op(s) replayed, torn_tail=%v, %d µs\n",
				r.SnapshotLSN, r.SnapshotTables, r.SnapshotRows, r.ReplayedTxns, r.ReplayedOps, r.TornTail, r.DurationMicros)
			continue
		case line == `\tables`:
			for _, name := range db.Txns().Catalog.Names() {
				schema, _ := db.Txns().Catalog.Lookup(name)
				cols := make([]string, schema.NumCols())
				for i := range cols {
					c := schema.Col(i)
					cols[i] = c.Name + " " + c.Kind.String()
				}
				fmt.Printf("  %s (%s)\n", name, strings.Join(cols, ", "))
			}
			continue
		case strings.HasPrefix(line, `\explain`):
			sql := strings.TrimSpace(strings.TrimPrefix(line, `\explain`))
			if sql == "" {
				fmt.Println("error: \\explain takes a SELECT statement")
				continue
			}
			text, err := db.Explain(sql)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(text)
			continue
		case strings.HasPrefix(line, `\metrics`):
			arg := strings.TrimSpace(strings.TrimPrefix(line, `\metrics`))
			if err := db.WriteMetrics(os.Stdout, arg == "json"); err != nil {
				fmt.Println("error:", err)
			}
			continue
		case strings.HasPrefix(line, `\trace`):
			n := 20
			if arg := strings.TrimSpace(strings.TrimPrefix(line, `\trace`)); arg != "" {
				v, err := strconv.Atoi(arg)
				if err != nil {
					fmt.Println("error: \\trace takes an event count")
					continue
				}
				n = v
			}
			evs := db.Trace(n)
			for _, ev := range evs {
				fmt.Printf("  %10d  %-13s %-24s %d\n", ev.At, ev.Kind, ev.Name, ev.Arg)
			}
			fmt.Printf("(%d events)\n", len(evs))
			continue
		case line == `\profile`:
			profiles := db.RuleProfiles()
			if len(profiles) == 0 {
				fmt.Println("(no rules have been created)")
				continue
			}
			fmt.Printf("  %-16s %8s %8s %10s %10s %9s %9s %9s %10s %8s %8s %8s\n",
				"function", "fired", "merged", "evalq", "eval_µs", "scanned", "matched", "written", "lockw_µs", "stale_p95", "slo_miss", "shed")
			for _, p := range profiles {
				fmt.Printf("  %-16s %8d %8d %10d %10d %9d %9d %9d %10d %8d %8d %8d\n",
					p.Function, p.Fired, p.TasksMerged, p.EvalQueries, p.EvalMicros,
					p.RowsScanned, p.RowsMatched, p.RowsWritten, p.LockWaitMicros,
					p.Staleness.P95, p.SLOBreaches, p.TasksShed)
				if p.DeadlineMicros > 0 {
					fmt.Printf("  %-16s deadline=%dµs staleness p50=%d p95=%d p99=%d max=%d\n",
						"", p.DeadlineMicros, p.Staleness.P50, p.Staleness.P95, p.Staleness.P99, p.Staleness.Max)
				}
			}
			continue
		case strings.HasPrefix(line, `\span`):
			arg := strings.TrimSpace(strings.TrimPrefix(line, `\span`))
			id, err := strconv.ParseInt(arg, 10, 64)
			if err != nil || id == 0 {
				fmt.Println("error: \\span takes a triggering transaction id (see \\trace txn.commit events)")
				continue
			}
			evs := db.Span(id)
			if len(evs) == 0 {
				fmt.Printf("(no retained events for trace %d — the ring may have wrapped)\n", id)
				continue
			}
			for _, ev := range evs {
				marker := "  "
				if ev.Trace != id {
					marker = "+ " // cross-linked from another chain (merge)
				}
				name := ev.Name
				if name == "" {
					name = fmt.Sprintf("txn %d", ev.Arg)
				}
				fmt.Printf("  %s%10dµs  %-14s %-24s arg=%-8d parent=%d\n",
					marker, ev.At, ev.Kind, name, ev.Arg, ev.Parent)
			}
			fmt.Printf("(%d events in chain %d)\n", len(evs), id)
			continue
		case strings.HasPrefix(line, `\stats`):
			fn := strings.TrimSpace(strings.TrimPrefix(line, `\stats`))
			st := db.Stats(fn)
			fmt.Printf("  fired=%d created=%d merged=%d run=%d errors=%d pending=%d\n",
				st.Fired, st.TasksCreated, st.TasksMerged, st.TasksRun, st.TaskErrors,
				db.Engine().PendingUnique(fn))
			continue
		}
		res, err := db.Exec(line)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		switch {
		case res.Rows != nil:
			fmt.Println(strings.Join(res.Columns, " | "))
			for _, row := range res.Rows {
				parts := make([]string, len(row))
				for i, v := range row {
					parts[i] = v.String()
				}
				fmt.Println(strings.Join(parts, " | "))
			}
			fmt.Printf("(%d rows)\n", len(res.Rows))
		case res.Affected > 0:
			fmt.Printf("ok (%d rows)\n", res.Affected)
		default:
			fmt.Println("ok")
		}
	}
}

// remoteShell is the -connect REPL: the same SQL surface, executed over
// the stripd wire protocol instead of an in-process engine.
func remoteShell(addr, token, tenant string) {
	c, err := client.Dial(addr, client.Options{Token: token, Tenant: tenant})
	if err != nil {
		fmt.Fprintln(os.Stderr, "strip-cli:", err)
		os.Exit(1)
	}
	defer c.Close()
	fmt.Printf("connected to stripd at %s (session %d)\n", addr, c.SessionID())
	fmt.Println(`STRIP remote shell — SQL statements end at newline; \help for meta commands.`)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("strip> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\quit` || line == `\q`:
			return
		case line == `\help`:
			fmt.Println(`meta commands:
  \begin     open the session's interactive transaction
  \commit    commit it
  \abort     abort it
  \ping      round-trip liveness check
  \quit
SQL statements run as QUERY (select) or EXEC (everything else) frames;
selects outside a transaction are eligible for shared snapshot execution.`)
			continue
		case line == `\begin`:
			reportRemote(c.Begin())
			continue
		case line == `\commit`:
			reportRemote(c.Commit())
			continue
		case line == `\abort`:
			reportRemote(c.Abort())
			continue
		case line == `\ping`:
			reportRemote(c.Ping())
			continue
		case strings.HasPrefix(line, `\`):
			fmt.Println("error: unknown meta command (remote mode; \\help)")
			continue
		}
		var res *client.Result
		if strings.HasPrefix(strings.ToLower(line), "select") {
			res, err = c.Query(line)
		} else {
			res, err = c.Exec(line)
		}
		if err != nil {
			fmt.Println("error:", err)
			if strip.IsRetryable(err) {
				fmt.Println("(transient: safe to retry)")
			}
			continue
		}
		switch {
		case res.Columns != nil:
			fmt.Println(strings.Join(res.Columns, " | "))
			for _, row := range res.Rows {
				parts := make([]string, len(row))
				for i, v := range row {
					parts[i] = v.String()
				}
				fmt.Println(strings.Join(parts, " | "))
			}
			fmt.Printf("(%d rows)\n", len(res.Rows))
		case res.Affected > 0:
			fmt.Printf("ok (%d rows)\n", res.Affected)
		default:
			fmt.Println("ok")
		}
	}
}

func reportRemote(err error) {
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("ok")
}
