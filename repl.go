package strip

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/stripdb/strip/internal/repl"
	"github.com/stripdb/strip/internal/server"
)

// Replication errors, re-exported for errors.Is classification.
var (
	// ErrReplica marks a write (or interactive transaction) attempted on a
	// read-only replica; redirect it to the primary.
	ErrReplica = server.ErrReplica
	// ErrLagging marks a replica read refused because replication lag
	// exceeds the session's bound (or a resync is in progress). Transient:
	// back off and retry, or fall back to the primary.
	ErrLagging = server.ErrLagging
	// ErrFenced marks a replication peer rejected by a fencing epoch: its
	// history diverged from the promoted primary's. Not retryable — the
	// fenced engine needs a fresh resync from the current primary.
	ErrFenced = server.ErrFenced
)

// ReplStatus is a point-in-time view of a replica's replication state (see
// DB.ReplStatus and stripmon's /debug/repl).
type ReplStatus = repl.Status

// ReplOptions tunes replication when Config.ReplicaOf is set.
type ReplOptions struct {
	// AuthToken and Tenant are presented to the primary's handshake.
	AuthToken string
	Tenant    string
	// Heartbeat is the shipper's keep-alive interval; it bounds how stale
	// the replica's lag measurement can get while the stream is idle, and
	// stream reads time out after ~10 missed heartbeats. Default 100ms.
	Heartbeat time.Duration
	// MaxBackoff caps the reconnect backoff after a lost primary
	// connection. Default 3s.
	MaxBackoff time.Duration
	// DialTimeout bounds one connection attempt to the primary. Default 2s.
	DialTimeout time.Duration
}

// writable returns ErrReplica when this engine is a read-only replica.
func (db *DB) writable(op string) error {
	if db.replica.Load() {
		return fmt.Errorf("strip: %s: %w", op, ErrReplica)
	}
	return nil
}

// IsReplica reports whether this engine replays a primary's WAL (reads
// only). Promote flips it false.
func (db *DB) IsReplica() bool { return db.replica.Load() }

// ReplStatus reports the replica's replication state; ok is false on an
// engine that was never opened with Config.ReplicaOf.
func (db *DB) ReplStatus() (st ReplStatus, ok bool) {
	if db.follower == nil {
		return ReplStatus{}, false
	}
	return db.follower.Status(), true
}

// Promote turns a replica into a standalone writable primary: replication
// stops, a bumped fencing epoch is stamped durably into the local WAL, and
// writes are accepted from then on. The deposed primary — and any follower
// still replaying its divergent tail — is rejected by the epoch if it later
// offers or requests frames. Not reversible; to demote, reopen the engine
// with Config.ReplicaOf.
func (db *DB) Promote() (epoch uint64, err error) {
	if db.follower == nil {
		return 0, errors.New("strip: Promote on an engine that is not a replica")
	}
	if !db.replica.Load() {
		return db.wal.Epoch(), nil // already promoted
	}
	epoch, err = db.follower.Promote()
	if err != nil {
		return 0, err
	}
	// Publish the epoch record's LSN so the first post-promotion snapshot
	// (and the MVCC commit-stamp sequence) sits past everything replayed.
	db.txns.SeedLSN(db.wal.NextLSN() - 1)
	db.replica.Store(false)
	return epoch, nil
}

// replHandler serves the follower's status as JSON at stripmon's
// /debug/repl.
func (db *DB) replHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		st, _ := db.ReplStatus()
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(st) //nolint:errcheck
	})
}
