package strip

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// parsePromStrict validates a Prometheus text-exposition (0.0.4) body: every
// line must be a well-formed HELP/TYPE comment or a sample whose family was
// declared by a preceding TYPE line. It returns samples keyed by
// name{labels} as rendered.
func parsePromStrict(t *testing.T, body string) map[string]float64 {
	t.Helper()
	types := map[string]string{}
	samples := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		fail := func(format string, args ...any) {
			t.Fatalf("line %d: %s\n  %q", lineno, fmt.Sprintf(format, args...), line)
		}
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !promNameRe.MatchString(name) {
				fail("malformed HELP")
			}
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 || !promNameRe.MatchString(fields[0]) {
				fail("malformed TYPE")
			}
			switch fields[1] {
			case "counter", "gauge", "summary", "histogram", "untyped":
			default:
				fail("unknown metric type %q", fields[1])
			}
			if _, dup := types[fields[0]]; dup {
				fail("family %s declared twice", fields[0])
			}
			types[fields[0]] = fields[1]
		case strings.HasPrefix(line, "#"):
			fail("unknown comment form")
		default:
			name, labels, value := parsePromSample(line, fail)
			family := name
			if _, ok := types[family]; !ok {
				// Summary auxiliaries belong to the base family.
				for _, suf := range []string{"_sum", "_count"} {
					if base, cut := strings.CutSuffix(name, suf); cut {
						if typ, ok := types[base]; ok && typ == "summary" {
							family = base
						}
					}
				}
			}
			if _, ok := types[family]; !ok {
				fail("sample %s has no TYPE declaration", name)
			}
			key := name
			if labels != "" {
				key += "{" + labels + "}"
			}
			if _, dup := samples[key]; dup {
				fail("duplicate sample %s", key)
			}
			samples[key] = value
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples in exposition")
	}
	return samples
}

// parsePromSample splits `name{labels} value` and validates each part.
func parsePromSample(line string, fail func(string, ...any)) (name, labels string, value float64) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			fail("unbalanced label braces")
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
		for _, pair := range splitPromLabels(labels) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || !promLabelRe.MatchString(k) {
				fail("malformed label %q", pair)
			}
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				fail("unquoted label value %q", v)
			}
		}
	} else {
		var ok bool
		name, rest, ok = strings.Cut(rest, " ")
		if !ok {
			fail("sample without value")
		}
	}
	if !promNameRe.MatchString(name) {
		fail("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		fail("want `value [timestamp]`, got %d fields", len(fields))
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		fail("invalid value: %v", err)
	}
	return name, labels, v
}

// splitPromLabels splits a label body on commas outside quoted values.
func splitPromLabels(s string) []string {
	var out []string
	var buf strings.Builder
	inQuote, escaped := false, false
	for _, r := range s {
		switch {
		case escaped:
			escaped = false
		case r == '\\' && inQuote:
			escaped = true
		case r == '"':
			inQuote = !inQuote
		case r == ',' && !inQuote:
			out = append(out, buf.String())
			buf.Reset()
			continue
		}
		buf.WriteRune(r)
	}
	if buf.Len() > 0 {
		out = append(out, buf.String())
	}
	return out
}

// TestMonitorSmoke starts an engine with stripmon attached, scrapes
// /metrics while a workload is running, and validates the body as strict
// Prometheus text format carrying the key series. The CI smoke job runs
// exactly this test.
func TestMonitorSmoke(t *testing.T) {
	db := MustOpen(Config{Workers: 2, MonitorAddr: "127.0.0.1:0"})
	defer db.Close()
	addr := db.MonitorAddr()
	if addr == "" {
		t.Fatal("MonitorAddr empty after Open with MonitorAddr set")
	}

	db.MustExec(`create table stocks (symbol text, price float)`)
	db.MustExec(`create index on stocks (symbol)`)
	db.MustExec(`create table mirror (symbol text, price float)`)
	db.MustExec(`create index on mirror (symbol)`)
	const symbols = 8
	for i := 0; i < symbols; i++ {
		db.MustExec(fmt.Sprintf(`insert into stocks values ('S%02d', 100)`, i))
		db.MustExec(fmt.Sprintf(`insert into mirror values ('S%02d', 100)`, i))
	}
	if err := db.RegisterFunc("mirror_price", func(ctx *ActionContext) error {
		m, _ := ctx.Bound("changes")
		if m.Len() == 0 {
			return nil
		}
		sch := m.Schema()
		sym := m.Value(m.Len()-1, sch.ColIndex("symbol"))
		price := m.Value(m.Len()-1, sch.ColIndex("price"))
		_, err := ExecAction(ctx, fmt.Sprintf(
			`update mirror set price = %g where symbol = '%v'`, price.Float(), sym))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`
	  create rule mon_mirror on stocks
	  when updated price
	  if select symbol, price from new bind as changes
	  then execute mirror_price
	  unique on symbol
	  after 1 ms`)

	// Scrape mid-workload: the exposition must be well-formed while
	// counters are moving.
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			db.MustExec(fmt.Sprintf(
				`update stocks set price = %g where symbol = 'S%02d'`,
				100+float64(i%17), i%symbols))
		}
	}()
	time.Sleep(30 * time.Millisecond)
	body := httpGet(t, "http://"+addr+"/metrics")
	stop.Store(true)
	wg.Wait()
	parsePromStrict(t, body)

	// Drain, then assert the key series on a settled scrape.
	for i := 0; i < 3; i++ {
		time.Sleep(10 * time.Millisecond)
		db.WaitIdle()
	}
	samples := parsePromStrict(t, httpGet(t, "http://"+addr+"/metrics"))
	for _, key := range []string{
		"strip_txn_committed",
		`strip_action_fired{function="mirror_price"}`,
		`strip_action_latency_micros_count{function="mirror_price"}`,
		`strip_rule_eval_micros{function="mirror_price"}`,
		`strip_rule_rows_written{function="mirror_price"}`,
		`strip_staleness_p95_micros{function="mirror_price"}`,
		"strip_trace_events",
	} {
		if samples[key] <= 0 {
			t.Errorf("key series %s = %g, want > 0", key, samples[key])
		}
	}

	// The profile API agrees with the exposition.
	p, ok := db.RuleProfile("mirror_price")
	if !ok || p.EvalMicros <= 0 {
		t.Errorf("RuleProfile(mirror_price): ok=%v eval=%dµs, want fired rule with eval cost", ok, p.EvalMicros)
	}
	if got := samples[`strip_rule_eval_micros{function="mirror_price"}`]; int64(got) > p.EvalMicros {
		t.Errorf("exposition eval_micros %g exceeds later profile %d", got, p.EvalMicros)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return string(b)
}
