// Package client is the Go client for stripd, the strip network server.
// It speaks the length-prefixed binary protocol from internal/server: one
// TCP connection per Client, a HELLO/WELCOME handshake carrying the auth
// token and tenant, then synchronous request/response frames.
//
// Errors decode to the same sentinels the embedded engine returns, so
// errors.Is(err, strip.ErrDeadlock) and strip.IsRetryable(err) behave
// identically for remote and embedded callers. Busy-shed requests (the
// server's admission control returning a retryable busy code) are retried
// transparently, paced by a token bucket so a thundering herd of shed
// clients cannot re-stampede a saturated server.
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/stripdb/strip/internal/ratelimit"
	"github.com/stripdb/strip/internal/server"
	"github.com/stripdb/strip/internal/types"
)

// Value is a column value (re-exported from the engine's type system).
type Value = types.Value

// Result is one statement's outcome: Columns/Rows for selects, Affected
// for DML.
type Result struct {
	Columns  []string
	Rows     [][]Value
	Affected int
}

// Options tunes Dial.
type Options struct {
	// Token is the auth token (must match the server's, when set there).
	Token string
	// Tenant names the client's tenant for per-tenant admission control.
	Tenant string
	// DialTimeout bounds the TCP connect + handshake. Default 5s.
	DialTimeout time.Duration
	// CallTimeout bounds one request/response round trip. Default 30s.
	CallTimeout time.Duration
	// BusyRetries is how many times a busy-shed statement is retried before
	// the busy error surfaces. Default 4; negative disables retry.
	BusyRetries int
	// RetryInterval paces busy retries: a token bucket mints one retry
	// token per interval, so shed clients back off instead of hammering.
	// The bucket is shared by every Client this process dials to the same
	// address — the first Dial's interval wins for that address. Default
	// 50ms.
	RetryInterval time.Duration
	// MaxLag bounds replica staleness: when connecting to a replica, reads
	// are refused with a retryable ErrLagging while the replica's
	// replication lag exceeds this. Zero accepts any lag. Ignored by
	// primaries.
	MaxLag time.Duration
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 30 * time.Second
	}
	if o.BusyRetries == 0 {
		o.BusyRetries = 4
	}
	if o.BusyRetries < 0 {
		o.BusyRetries = 0
	}
	if o.RetryInterval <= 0 {
		o.RetryInterval = 50 * time.Millisecond
	}
	return o
}

// Client is one stripd connection. Methods are safe for concurrent use;
// requests serialize on the connection.
type Client struct {
	opts      Options
	sessionID int64

	mu    sync.Mutex
	conn  net.Conn
	retry *ratelimit.Bucket // paces busy retries on wall-time micros
}

// Busy-retry pacing is shared per server address, not per Client: when one
// saturated server sheds a fleet of sessions from this process, they must
// trickle back as a group — per-Client buckets would multiply the retry
// rate by the session count and re-stampede the server.
var (
	retryMu      sync.Mutex
	retryBuckets = make(map[string]*ratelimit.Bucket)
)

// retryBucket returns the process-wide retry bucket for addr, creating it
// with interval on first use (later intervals for the same address are
// ignored).
func retryBucket(addr string, interval time.Duration) *ratelimit.Bucket {
	retryMu.Lock()
	defer retryMu.Unlock()
	b, ok := retryBuckets[addr]
	if !ok {
		b = ratelimit.New(1, interval.Microseconds())
		retryBuckets[addr] = b
	}
	return b
}

// Dial connects to a stripd server and completes the handshake.
func Dial(addr string, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	hello := server.EncodeHello(opts.Token, opts.Tenant)
	if opts.MaxLag > 0 {
		hello = server.EncodeHelloLag(opts.Token, opts.Tenant, uint64(opts.MaxLag.Microseconds()))
	}
	conn.SetDeadline(time.Now().Add(opts.DialTimeout)) //nolint:errcheck
	if err := server.WriteFrame(conn, server.FrameHello, hello); err != nil {
		conn.Close() //nolint:errcheck
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	typ, payload, err := server.ReadFrame(conn)
	if err != nil {
		conn.Close() //nolint:errcheck
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	if typ == server.FrameErr {
		conn.Close() //nolint:errcheck
		code, msg, derr := server.DecodeErr(payload)
		if derr != nil {
			return nil, fmt.Errorf("client: handshake refused: %w", derr)
		}
		return nil, server.DecodeError(code, msg)
	}
	if typ != server.FrameWelcome {
		conn.Close() //nolint:errcheck
		return nil, fmt.Errorf("client: unexpected handshake frame 0x%02x", typ)
	}
	sid, err := server.DecodeWelcome(payload)
	if err != nil {
		conn.Close() //nolint:errcheck
		return nil, err
	}
	conn.SetDeadline(time.Time{}) //nolint:errcheck
	return &Client{
		opts:      opts,
		sessionID: sid,
		conn:      conn,
		retry:     retryBucket(addr, opts.RetryInterval),
	}, nil
}

// SessionID reports the server-assigned session id.
func (c *Client) SessionID() int64 { return c.sessionID }

// Close closes the connection. An open transaction is aborted server-side.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// do runs one round trip. The caller owns retry policy.
func (c *Client) do(typ byte, payload []byte) (byte, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return 0, nil, fmt.Errorf("client: connection closed")
	}
	c.conn.SetDeadline(time.Now().Add(c.opts.CallTimeout)) //nolint:errcheck
	if err := server.WriteFrame(c.conn, typ, payload); err != nil {
		return 0, nil, err
	}
	rt, rp, err := server.ReadFrame(c.conn)
	return rt, rp, err
}

// call runs one round trip, decoding ERR frames into typed errors and
// retrying busy sheds under the pacing bucket.
func (c *Client) call(typ byte, payload []byte) (byte, []byte, error) {
	for attempt := 0; ; attempt++ {
		rt, rp, err := c.do(typ, payload)
		if err != nil {
			return 0, nil, err
		}
		if rt != server.FrameErr {
			return rt, rp, nil
		}
		code, msg, derr := server.DecodeErr(rp)
		if derr != nil {
			return 0, nil, derr
		}
		werr := server.DecodeError(code, msg)
		if !errors.Is(werr, server.ErrBusy) || attempt >= c.opts.BusyRetries {
			return 0, nil, werr
		}
		// Busy shed: wait for a retry token (wall-clock micros) so a fleet
		// of shed clients trickles back instead of stampeding.
		for {
			now := time.Now().UnixMicro()
			if c.retry.TryTake(now) {
				break
			}
			wait := c.retry.NextToken(now)
			if wait < 0 {
				return 0, nil, werr
			}
			time.Sleep(time.Duration(wait) * time.Microsecond)
		}
	}
}

// statement runs one SQL frame and decodes its result.
func (c *Client) statement(typ byte, sql string) (*Result, error) {
	rt, rp, err := c.call(typ, server.EncodeSQL(sql))
	if err != nil {
		return nil, err
	}
	switch rt {
	case server.FrameRows:
		cols, rows, err := server.DecodeRows(rp)
		if err != nil {
			return nil, err
		}
		return &Result{Columns: cols, Rows: rows}, nil
	case server.FrameOK:
		n, err := server.DecodeOK(rp)
		if err != nil {
			return nil, err
		}
		return &Result{Affected: n}, nil
	default:
		return nil, fmt.Errorf("client: unexpected response frame 0x%02x", rt)
	}
}

// Query runs one SELECT. Outside a transaction it is eligible for the
// server's shared snapshot execution.
func (c *Client) Query(sql string) (*Result, error) {
	return c.statement(server.FrameQuery, sql)
}

// Exec runs one statement (DDL, DML, or SELECT) — inside the session
// transaction when one is open, auto-committed otherwise.
func (c *Client) Exec(sql string) (*Result, error) {
	return c.statement(server.FrameExec, sql)
}

// control runs one bodyless transaction-control or ping frame.
func (c *Client) control(typ byte) error {
	rt, _, err := c.call(typ, nil)
	if err != nil {
		return err
	}
	switch rt {
	case server.FrameOK, server.FramePong:
		return nil
	default:
		return fmt.Errorf("client: unexpected response frame 0x%02x", rt)
	}
}

// Begin opens the session's interactive transaction.
func (c *Client) Begin() error { return c.control(server.FrameBegin) }

// Commit commits it.
func (c *Client) Commit() error { return c.control(server.FrameCommit) }

// Abort aborts it.
func (c *Client) Abort() error { return c.control(server.FrameAbort) }

// Ping checks liveness.
func (c *Client) Ping() error { return c.control(server.FramePing) }
