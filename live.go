package strip

import "time"

// liveYield briefly parks the caller while live workers drain queues.
func liveYield() { time.Sleep(200 * time.Microsecond) }
