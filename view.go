package strip

import (
	"fmt"

	"github.com/stripdb/strip/internal/query"
	"github.com/stripdb/strip/internal/viewgen"
)

// ViewMode selects how a materialized view is maintained.
type ViewMode = viewgen.Mode

// View maintenance modes.
const (
	// ViewModeAuto maintains the view from transition-table deltas when
	// the needed indexes exist, else falls back to full recomputation.
	ViewModeAuto = viewgen.ModeAuto
	// ViewModeDelta requires O(|delta|) maintenance; creation fails if a
	// needed index is missing.
	ViewModeDelta = viewgen.ModeDelta
	// ViewModeFull rebuilds the view from its defining query on every
	// maintenance run — the O(|base|) baseline.
	ViewModeFull = viewgen.ModeFull
)

// ViewOptions tunes materialized-view creation. Zero values get estimates.
type ViewOptions struct {
	// UpdateRate is the expected base-table update rate (updates/second);
	// it feeds the delay-window advisor. Defaults to 30/s (the paper's
	// trace average) when zero.
	UpdateRate float64
	// MaxStaleness bounds the advised delay window (micros). Defaults to
	// 3 s, the knee of the paper's delay sweep.
	MaxStaleness int64
	// Mode selects delta vs full maintenance; the zero value is
	// ViewModeAuto.
	Mode ViewMode
}

// ViewInfo reports what CreateMaterializedView generated.
type ViewInfo struct {
	Name string
	// RuleName is the generated maintenance rule.
	RuleName string
	// Action is the generated user function's name.
	Action string
	// Maintenance is the resolved maintenance mode ("delta" or "full").
	Maintenance string
	// UniqueOn and DelayMicros are the advisor's batching choices.
	UniqueOn    []string
	DelayMicros int64
	// Reason documents the advisor's choice.
	Reason string
	// Rows is the initial materialized row count.
	Rows int
}

// CreateMaterializedView materializes a view definition and generates its
// maintenance rule automatically — including the unit of batching, the
// delay window, and the maintenance mode — implementing the paper's §8
// future-work proposal. The definition must be one of the two supported
// shapes (see package viewgen): a grouped sum over a two-table equi-join,
// or a per-row scalar function over one.
//
// Under ViewModeAuto (the default) the maintenance rule applies
// transition-table deltas to the view in O(|delta|) per firing when every
// index in spec.DeltaRequirements exists, and rebuilds the view wholesale
// otherwise. Aggregation views maintained this way carry an extra
// support-count column (viewgen.CountColumn).
func (db *DB) CreateMaterializedView(name string, def *Select, opts ViewOptions) (*ViewInfo, error) {
	if err := db.writable("create view"); err != nil {
		return nil, err
	}
	spec, err := viewgen.Analyze(db.txns.Catalog, name, def)
	if err != nil {
		return nil, err
	}
	schema, err := spec.ViewSchema(db.txns.Catalog)
	if err != nil {
		return nil, err
	}

	// Resolve the maintenance mode against the indexes that exist now.
	mode := opts.Mode
	if mode != viewgen.ModeFull {
		missing := ""
		for _, req := range spec.DeltaRequirements() {
			tbl, ok := db.txns.Store.Get(req.Table)
			if !ok || !tbl.HasIndex(req.Col) {
				missing = fmt.Sprintf("%s(%s)", req.Table, req.Col)
				break
			}
		}
		switch {
		case missing == "":
			mode = viewgen.ModeDelta
		case mode == viewgen.ModeDelta:
			return nil, fmt.Errorf("strip: view %s: delta maintenance needs an index on %s", name, missing)
		default: // ModeAuto without the indexes: fall back silently.
			mode = viewgen.ModeFull
		}
	}

	// Materialize from the canonical load query — the same query the full
	// maintenance path replays — so the initial contents and every rebuild
	// agree on shape (including the aggregation support count).
	tx := db.Begin()
	res, err := spec.LoadQuery().Run(tx, query.TxnResolver{})
	if err != nil {
		tx.Abort() //nolint:errcheck
		return nil, err
	}
	rows := make([][]Value, res.Len())
	for i := range rows {
		rows[i] = res.Row(i)
	}
	res.Retire()
	if err := tx.Commit(); err != nil {
		return nil, err
	}

	if err := db.txns.Catalog.Define(schema); err != nil {
		return nil, err
	}
	tbl, err := db.txns.Store.Create(schema)
	if err != nil {
		db.txns.Catalog.Drop(name) //nolint:errcheck
		return nil, err
	}
	if err := db.CreateIndex(name, spec.KeyColumn(), "hash"); err != nil {
		return nil, err
	}
	for _, row := range rows {
		if _, err := tbl.Insert(row); err != nil {
			return nil, err
		}
	}

	// Advise batching from data statistics plus caller-provided rates.
	if opts.UpdateRate <= 0 {
		opts.UpdateRate = 30
	}
	if opts.MaxStaleness <= 0 {
		opts.MaxStaleness = 3_000_000
	}
	baseTbl, _ := db.txns.Store.Get(spec.Base())
	dimTbl, _ := db.txns.Store.Get(spec.Dim())
	fanOut := 1.0
	if baseTbl != nil && dimTbl != nil && baseTbl.Len() > 0 {
		fanOut = float64(dimTbl.Len()) / float64(baseTbl.Len())
	}
	adv := spec.Advise(viewgen.Stats{
		UpdateRate:   opts.UpdateRate,
		FanOut:       fanOut,
		Groups:       len(rows),
		MaxStaleness: opts.MaxStaleness,
	})

	action := "maintain_" + name + "_fn"
	rule, fn, err := spec.MaintenanceRule(action, adv, mode)
	if err != nil {
		return nil, err
	}
	if err := db.RegisterFunc(action, fn); err != nil {
		return nil, err
	}
	if err := db.CreateRule(rule); err != nil {
		return nil, err
	}
	return &ViewInfo{
		Name:        name,
		RuleName:    rule.Name,
		Action:      action,
		Maintenance: rule.Maintenance,
		UniqueOn:    adv.UniqueOn,
		DelayMicros: adv.Delay,
		Reason:      adv.Reason,
		Rows:        len(rows),
	}, nil
}

// viewInfoString renders ViewInfo for logs.
func (vi *ViewInfo) String() string {
	return fmt.Sprintf("view %s: %d rows, %s maintenance, rule %s after %.1fs (%s)",
		vi.Name, vi.Rows, vi.Maintenance, vi.RuleName, float64(vi.DelayMicros)/1e6, vi.Reason)
}
